//! Deterministic fault injection for the simulated source layer.
//!
//! The paper's sources are *remote* — its cost model charges a Poisson
//! network round per stream read — so a faithful serving reproduction needs
//! failure semantics, not just delays. A [`FaultInjector`] schedules, per
//! relation, three kinds of trouble over **simulated** time:
//!
//! - **transient fetch errors** (`transient=<rate>`): a fetch round fails
//!   with [`SourceError::Transient`]; the round-trip is still charged to the
//!   clock and the tuple stays at the source, so a retry can fetch it.
//! - **slow rounds** (`slow=<rate>x<mult>`): the round's Poisson delay is
//!   inflated by `<mult>`; if a per-fetch timeout is configured and the
//!   inflated delay exceeds it, the fetch fails with
//!   [`SourceError::Timeout`] after charging exactly the timeout.
//! - **hard outages** (`outage=<start>..<end>` in virtual µs, open end =
//!   the rest of the run): every fetch in the window fails with
//!   [`SourceError::Outage`].
//!
//! Plus a test hook, `panic` — the first fetch of that relation panics, to
//! exercise lane panic-isolation.
//!
//! # Determinism
//!
//! The injector draws from its **own** seeded RNG, and only for relations
//! with a nonzero transient/slow rate — so a fault schedule perturbs
//! neither the delay sequence of unfaulted relations nor any other
//! workload randomness. Error rounds charge a *fixed* cost (the mean
//! network delay) and consume no RNG at all. With no injector installed,
//! the fetch path is byte-identical to the fault-free build.
//!
//! # Spec grammar (`QSYS_FAULTS` / [`FaultSpec::parse`])
//!
//! Semicolon-separated clauses; whitespace is ignored:
//!
//! ```text
//! seed=7; transient=0.01; rel3:outage=0..; rel5:slow=0.2x6; rel9:panic
//! ```
//!
//! - `seed=<u64>` — the injector RNG seed (default 0).
//! - Unscoped `transient=`/`slow=` clauses set the **default** faults for
//!   every relation without a scoped clause.
//! - `rel<N>:` scopes a clause to one relation. A relation with any scoped
//!   clause starts from a clean slate (the defaults do not apply to it).
//! - `outage=<start>..<end?>` may repeat for multiple windows.
//! - `snap:` scopes a clause to warm-state snapshot I/O (see
//!   [`SnapFaults`]): `snap:torn=<k>` truncates the snapshot tmp file to
//!   `k` bytes before it is published, `snap:shortread=<k>` makes loads
//!   see only the first `k` bytes, `snap:bitflip=<k>` flips the low bit of
//!   byte `k` after checksums are computed, `snap:renamefail` fails the
//!   tmp → final rename, and `snap:crash` panics after the tmp write
//!   (the write-time crash hook). These are exact, deterministic
//!   corruptions — no RNG — so recovery tests replay byte-identically.

use qsys_types::dist::seeded_rng;
use qsys_types::RelId;
use rand::rngs::StdRng;
use rand::Rng;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;

/// A failed source fetch. Carries the relation so upper layers can
/// quarantine exactly the queries reading it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SourceError {
    /// A transient fetch error: the round-trip was wasted but the source is
    /// expected to answer a retry.
    Transient {
        /// The relation whose fetch failed.
        rel: RelId,
    },
    /// The source is in a hard outage window: retries within the window
    /// will keep failing.
    Outage {
        /// The unavailable relation.
        rel: RelId,
    },
    /// A slow round exceeded the per-fetch timeout; the wait up to the
    /// timeout was charged, the tuple was not delivered.
    Timeout {
        /// The relation whose fetch timed out.
        rel: RelId,
    },
    /// The executor's circuit breaker for this relation is open — the fetch
    /// was failed fast without contacting the source. (Produced by the
    /// governor in `qsys-exec`, never by the injector itself; defined here
    /// so the whole stack shares one error type.)
    BreakerOpen {
        /// The relation whose breaker is open.
        rel: RelId,
    },
}

impl SourceError {
    /// The relation this failure concerns.
    pub fn rel(&self) -> RelId {
        match *self {
            SourceError::Transient { rel }
            | SourceError::Outage { rel }
            | SourceError::Timeout { rel }
            | SourceError::BreakerOpen { rel } => rel,
        }
    }
}

impl fmt::Display for SourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SourceError::Transient { rel } => write!(f, "transient fetch error on {rel}"),
            SourceError::Outage { rel } => write!(f, "{rel} is in a hard outage"),
            SourceError::Timeout { rel } => write!(f, "fetch from {rel} timed out"),
            SourceError::BreakerOpen { rel } => write!(f, "circuit breaker open for {rel}"),
        }
    }
}

impl std::error::Error for SourceError {}

/// Fault configuration for one relation.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RelFaults {
    /// Probability that a fetch round fails transiently.
    pub transient: f64,
    /// Probability that a round is slow.
    pub slow_rate: f64,
    /// Latency multiplier applied to slow rounds.
    pub slow_mult: f64,
    /// Hard-outage windows in virtual µs; `None` end = rest of the run.
    pub outages: Vec<(u64, Option<u64>)>,
    /// Panic on the first fetch (lane panic-isolation test hook).
    pub panic_on_fetch: bool,
}

impl RelFaults {
    /// Whether any fault is configured at all.
    pub fn is_clear(&self) -> bool {
        self.transient <= 0.0
            && self.slow_rate <= 0.0
            && self.outages.is_empty()
            && !self.panic_on_fetch
    }

    fn in_outage(&self, now_us: u64) -> bool {
        self.outages
            .iter()
            .any(|&(start, end)| now_us >= start && end.is_none_or(|e| now_us < e))
    }
}

/// Deterministic corruptions of warm-state snapshot I/O (`snap:` clauses).
///
/// Unlike the per-relation faults, these draw no RNG: each is an exact
/// byte-level corruption (torn write at byte *k*, short read to *k* bytes,
/// bit flip at byte *k*), a publication failure (`renamefail`), or a
/// write-time crash hook (`crash`) — so every recovery scenario replays
/// byte-identically and the snapshot loader's fallback path can be pinned
/// in tests. Consumed by `qsys-snapshot`'s writer and loader.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SnapFaults {
    /// Truncate the snapshot tmp file to this many bytes before it is
    /// published — a torn write that still gets renamed into place.
    pub torn_write: Option<u64>,
    /// Loads observe only the first `k` bytes of the file.
    pub short_read: Option<u64>,
    /// Flip the lowest bit of byte `k` *after* checksums are computed.
    pub bit_flip: Option<u64>,
    /// The tmp → final rename fails; the previous snapshot (if any)
    /// survives untouched.
    pub rename_fail: bool,
    /// Panic after the tmp write, before the rename — simulates a crash
    /// mid-publication (the tmp file is left behind; the published
    /// snapshot is never half-written).
    pub crash_after_write: bool,
}

impl SnapFaults {
    /// Whether no snapshot fault is configured.
    pub fn is_clear(&self) -> bool {
        self.torn_write.is_none()
            && self.short_read.is_none()
            && self.bit_flip.is_none()
            && !self.rename_fail
            && !self.crash_after_write
    }
}

/// A complete, serializable fault schedule (see the module docs for the
/// text grammar). `Display` re-emits the canonical spec string, so specs
/// round-trip through `parse`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultSpec {
    /// Seed for the injector's private RNG.
    pub seed: u64,
    /// Faults applied to relations with no scoped clause.
    pub default_faults: RelFaults,
    /// Scoped per-relation faults (these *replace* the defaults).
    pub per_rel: BTreeMap<u32, RelFaults>,
    /// Snapshot-I/O corruptions (`snap:` clauses).
    pub snap: SnapFaults,
}

impl FaultSpec {
    /// Parse the `QSYS_FAULTS` grammar. Returns a human-readable error for
    /// malformed clauses.
    pub fn parse(spec: &str) -> Result<FaultSpec, String> {
        let mut out = FaultSpec::default();
        for raw in spec.split(';') {
            let clause = raw.trim();
            if clause.is_empty() {
                continue;
            }
            let (scope, body) = match clause.split_once(':') {
                Some((scope, body)) if scope.trim() == "snap" => {
                    parse_snap_clause(&mut out.snap, body.trim(), clause)?;
                    continue;
                }
                Some((rel, body)) => {
                    let id: u32 = rel
                        .trim()
                        .strip_prefix("rel")
                        .and_then(|n| n.parse().ok())
                        .ok_or_else(|| format!("bad relation scope `{rel}` in `{clause}`"))?;
                    (Some(id), body.trim())
                }
                None => (None, clause),
            };
            let faults = match scope {
                Some(id) => out.per_rel.entry(id).or_default(),
                None => &mut out.default_faults,
            };
            if body == "panic" {
                if scope.is_none() {
                    return Err("`panic` must be scoped to one relation".into());
                }
                faults.panic_on_fetch = true;
                continue;
            }
            let (key, value) = body
                .split_once('=')
                .ok_or_else(|| format!("expected `key=value` in `{clause}`"))?;
            match (key.trim(), value.trim()) {
                ("seed", v) => {
                    if scope.is_some() {
                        return Err(format!("`seed` cannot be scoped in `{clause}`"));
                    }
                    out.seed = v.parse().map_err(|_| format!("bad seed `{v}`"))?;
                }
                ("transient", v) => {
                    faults.transient = parse_rate(v, clause)?;
                }
                ("slow", v) => {
                    let (rate, mult) = v
                        .split_once('x')
                        .ok_or_else(|| format!("expected `slow=<rate>x<mult>` in `{clause}`"))?;
                    faults.slow_rate = parse_rate(rate, clause)?;
                    faults.slow_mult = mult
                        .trim()
                        .parse()
                        .map_err(|_| format!("bad slow multiplier `{mult}` in `{clause}`"))?;
                    if faults.slow_mult < 1.0 {
                        return Err(format!("slow multiplier must be ≥ 1 in `{clause}`"));
                    }
                }
                ("outage", v) => {
                    let (start, end) = v.split_once("..").ok_or_else(|| {
                        format!("expected `outage=<start>..<end?>` in `{clause}`")
                    })?;
                    let start: u64 = start
                        .trim()
                        .parse()
                        .map_err(|_| format!("bad outage start `{start}` in `{clause}`"))?;
                    let end = match end.trim() {
                        "" => None,
                        e => Some(
                            e.parse::<u64>()
                                .map_err(|_| format!("bad outage end `{e}` in `{clause}`"))?,
                        ),
                    };
                    if end.is_some_and(|e| e <= start) {
                        return Err(format!("empty outage window in `{clause}`"));
                    }
                    faults.outages.push((start, end));
                }
                (k, _) => return Err(format!("unknown fault kind `{k}` in `{clause}`")),
            }
        }
        Ok(out)
    }

    /// Parse a `QSYS_FAULTS` schedule with the variable's value passed
    /// explicitly (unset = `None`). The environment read itself lives in
    /// `EngineConfig::default` — the one module allowed to touch process
    /// environment (enforced by `qsys-lint`) — so a malformed spec
    /// surfaces through `EngineConfig::validate_all` as a structured
    /// error instead of panicking inside a `Default` impl.
    pub fn from_env_value(value: Option<String>) -> Result<Option<FaultSpec>, String> {
        match value {
            None => Ok(None),
            Some(spec) if spec.trim().is_empty() => Ok(None),
            Some(spec) => FaultSpec::parse(&spec)
                .map(Some)
                .map_err(|e| format!("QSYS_FAULTS: {e}")),
        }
    }

    /// The faults in force for `rel`.
    pub fn faults_for(&self, rel: RelId) -> &RelFaults {
        self.per_rel.get(&rel.0).unwrap_or(&self.default_faults)
    }

    /// Relations explicitly named by the spec (scoped clauses).
    pub fn scoped_rels(&self) -> impl Iterator<Item = RelId> + '_ {
        self.per_rel.keys().map(|&id| RelId::new(id))
    }
}

fn parse_snap_clause(snap: &mut SnapFaults, body: &str, clause: &str) -> Result<(), String> {
    match body {
        "renamefail" => {
            snap.rename_fail = true;
            return Ok(());
        }
        "crash" => {
            snap.crash_after_write = true;
            return Ok(());
        }
        _ => {}
    }
    let (key, value) = body
        .split_once('=')
        .ok_or_else(|| format!("expected `snap:<kind>=<byte>` in `{clause}`"))?;
    let at: u64 = value
        .trim()
        .parse()
        .map_err(|_| format!("bad byte offset `{value}` in `{clause}`"))?;
    match key.trim() {
        "torn" => snap.torn_write = Some(at),
        "shortread" => snap.short_read = Some(at),
        "bitflip" => snap.bit_flip = Some(at),
        k => return Err(format!("unknown snapshot fault `{k}` in `{clause}`")),
    }
    Ok(())
}

fn parse_rate(v: &str, clause: &str) -> Result<f64, String> {
    let rate: f64 = v
        .trim()
        .parse()
        .map_err(|_| format!("bad rate `{v}` in `{clause}`"))?;
    if !(0.0..=1.0).contains(&rate) {
        return Err(format!("rate {rate} out of [0,1] in `{clause}`"));
    }
    Ok(rate)
}

fn fmt_faults(f: &mut fmt::Formatter<'_>, scope: &str, faults: &RelFaults) -> fmt::Result {
    if faults.transient > 0.0 {
        write!(f, ";{scope}transient={}", faults.transient)?;
    }
    if faults.slow_rate > 0.0 {
        write!(f, ";{scope}slow={}x{}", faults.slow_rate, faults.slow_mult)?;
    }
    for &(start, end) in &faults.outages {
        match end {
            Some(e) => write!(f, ";{scope}outage={start}..{e}")?,
            None => write!(f, ";{scope}outage={start}..")?,
        }
    }
    if faults.panic_on_fetch {
        write!(f, ";{scope}panic")?;
    }
    Ok(())
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seed={}", self.seed)?;
        fmt_faults(f, "", &self.default_faults)?;
        for (id, faults) in &self.per_rel {
            fmt_faults(f, &format!("rel{id}:"), faults)?;
        }
        if let Some(k) = self.snap.torn_write {
            write!(f, ";snap:torn={k}")?;
        }
        if let Some(k) = self.snap.short_read {
            write!(f, ";snap:shortread={k}")?;
        }
        if let Some(k) = self.snap.bit_flip {
            write!(f, ";snap:bitflip={k}")?;
        }
        if self.snap.rename_fail {
            write!(f, ";snap:renamefail")?;
        }
        if self.snap.crash_after_write {
            write!(f, ";snap:crash")?;
        }
        Ok(())
    }
}

/// What the injector ruled for one fetch round.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Verdict {
    /// The round proceeds normally.
    Clear,
    /// The round proceeds, but its network delay is multiplied.
    Slow {
        /// The relation whose slow schedule fired.
        rel: RelId,
        /// The latency multiplier.
        mult: f64,
    },
    /// The round fails.
    Fail(SourceError),
}

/// The per-lane fault oracle. Owns a private seeded RNG (mixed with the
/// lane index so clustered lanes draw independent fault sequences) and is
/// consulted once per fetch *round* — mid-round batched reads are local and
/// cannot fail.
pub struct FaultInjector {
    spec: FaultSpec,
    rng: RefCell<StdRng>,
}

impl FaultInjector {
    /// Build an injector for one lane.
    pub fn new(spec: FaultSpec, lane_idx: usize) -> FaultInjector {
        let seed = spec.seed ^ (lane_idx as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        FaultInjector {
            spec,
            rng: RefCell::new(seeded_rng(seed)),
        }
    }

    /// The schedule this injector runs.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// Rule on a fetch round touching `rels` at virtual time `now_us`.
    ///
    /// Order: panic hook, then outage windows, then transient draws, then
    /// slow draws — each in `rels` order. RNG is consumed only for
    /// relations with a nonzero rate, so unfaulted relations never perturb
    /// the draw sequence.
    pub fn verdict(&self, rels: &[RelId], now_us: u64) -> Verdict {
        for &rel in rels {
            if self.spec.faults_for(rel).panic_on_fetch {
                panic!("injected fault: panic on fetch from {rel}");
            }
        }
        for &rel in rels {
            if self.spec.faults_for(rel).in_outage(now_us) {
                return Verdict::Fail(SourceError::Outage { rel });
            }
        }
        for &rel in rels {
            let f = self.spec.faults_for(rel);
            if f.transient > 0.0 && self.rng.borrow_mut().random::<f64>() < f.transient {
                return Verdict::Fail(SourceError::Transient { rel });
            }
        }
        for &rel in rels {
            let f = self.spec.faults_for(rel);
            if f.slow_rate > 0.0 && self.rng.borrow_mut().random::<f64>() < f.slow_rate {
                return Verdict::Slow {
                    rel,
                    mult: f.slow_mult,
                };
            }
        }
        Verdict::Clear
    }

    /// Whether `rels` is entirely clear of scheduled faults (no verdict —
    /// and thus no RNG draw — will ever be needed for such a fetch).
    pub fn all_clear(&self, rels: &[RelId]) -> bool {
        rels.iter().all(|&r| self.spec.faults_for(r).is_clear())
    }
}

impl fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultInjector")
            .field("spec", &self.spec)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parses_and_round_trips() {
        let s = "seed=7; transient=0.01; rel3:outage=0..; rel5:slow=0.2x6; rel9:panic; \
                 snap:torn=512; snap:bitflip=40; snap:renamefail";
        let spec = FaultSpec::parse(s).unwrap();
        assert_eq!(spec.seed, 7);
        assert_eq!(spec.default_faults.transient, 0.01);
        assert_eq!(spec.per_rel[&3].outages, vec![(0, None)]);
        assert_eq!(spec.per_rel[&5].slow_rate, 0.2);
        assert_eq!(spec.per_rel[&5].slow_mult, 6.0);
        assert!(spec.per_rel[&9].panic_on_fetch);
        assert_eq!(spec.snap.torn_write, Some(512));
        assert_eq!(spec.snap.bit_flip, Some(40));
        assert!(spec.snap.rename_fail);
        assert!(!spec.snap.crash_after_write);
        assert!(!spec.snap.is_clear());
        let reparsed = FaultSpec::parse(&spec.to_string()).unwrap();
        assert_eq!(spec, reparsed);
    }

    #[test]
    fn snap_clauses_parse_and_round_trip() {
        let spec = FaultSpec::parse("snap:shortread=128; snap:crash").unwrap();
        assert_eq!(spec.snap.short_read, Some(128));
        assert!(spec.snap.crash_after_write);
        assert!(spec.default_faults.is_clear());
        let reparsed = FaultSpec::parse(&spec.to_string()).unwrap();
        assert_eq!(spec, reparsed);
    }

    #[test]
    fn from_env_value_returns_structured_errors() {
        assert_eq!(FaultSpec::from_env_value(None), Ok(None));
        assert_eq!(FaultSpec::from_env_value(Some("  ".into())), Ok(None));
        let ok = FaultSpec::from_env_value(Some("seed=3; transient=0.1".into()))
            .unwrap()
            .unwrap();
        assert_eq!(ok.seed, 3);
        let err = FaultSpec::from_env_value(Some("transient=oops".into())).unwrap_err();
        assert!(
            err.contains("QSYS_FAULTS"),
            "error names the variable: {err}"
        );
        assert!(err.contains("oops"), "error names the bad clause: {err}");
    }

    #[test]
    fn scoped_clause_replaces_defaults() {
        let spec = FaultSpec::parse("transient=0.5; rel2:slow=1x4").unwrap();
        assert_eq!(spec.faults_for(RelId::new(1)).transient, 0.5);
        // rel2 has a scoped clause: the default transient does not apply.
        assert_eq!(spec.faults_for(RelId::new(2)).transient, 0.0);
        assert_eq!(spec.faults_for(RelId::new(2)).slow_mult, 4.0);
    }

    #[test]
    fn bad_specs_are_rejected() {
        for bad in [
            "transient=2.0",
            "rel1:outage=5..5",
            "slow=0.5",
            "panic",
            "relx:transient=0.1",
            "rel1:seed=4",
            "frobnicate=1",
            "snap:torn=notanumber",
            "snap:frobnicate=1",
            "snap:panic",
        ] {
            assert!(FaultSpec::parse(bad).is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn outage_windows_and_open_ends() {
        let spec = FaultSpec::parse("rel1:outage=100..200; rel1:outage=500..").unwrap();
        let f = spec.faults_for(RelId::new(1));
        assert!(!f.in_outage(99));
        assert!(f.in_outage(100));
        assert!(!f.in_outage(200));
        assert!(f.in_outage(1_000_000));
    }

    #[test]
    fn verdicts_are_deterministic_and_skip_clear_rels() {
        let spec = FaultSpec::parse("seed=3; rel1:transient=0.5").unwrap();
        let run = || {
            let inj = FaultInjector::new(spec.clone(), 0);
            (0..64)
                .map(|i| inj.verdict(&[RelId::new(1)], i) == Verdict::Clear)
                .collect::<Vec<_>>()
        };
        let a = run();
        assert_eq!(a, run(), "same seed, same verdict sequence");
        assert!(a.iter().any(|&c| c) && a.iter().any(|&c| !c));

        // A clear relation consumes no RNG: interleaving its verdicts must
        // not change the faulted relation's sequence.
        let inj = FaultInjector::new(spec.clone(), 0);
        let mut b = Vec::new();
        for i in 0..64 {
            assert_eq!(inj.verdict(&[RelId::new(2)], i), Verdict::Clear);
            b.push(inj.verdict(&[RelId::new(1)], i) == Verdict::Clear);
        }
        assert_eq!(a, b);
        assert!(inj.all_clear(&[RelId::new(2)]));
        assert!(!inj.all_clear(&[RelId::new(1), RelId::new(2)]));
    }

    #[test]
    #[should_panic(expected = "injected fault: panic on fetch")]
    fn panic_hook_fires() {
        let spec = FaultSpec::parse("rel4:panic").unwrap();
        FaultInjector::new(spec, 0).verdict(&[RelId::new(4)], 0);
    }
}

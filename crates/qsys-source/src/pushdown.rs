//! Select-project-join push-down.
//!
//! The optimizer's first stage (Section 5.1) factors out subexpressions to
//! be "executed at the remote DBMS sites". An [`SpjSpec`] is the wire-level
//! description of such a subexpression: a set of relations with optional
//! equality selections, connected by equi-join conditions. The source layer
//! evaluates it *at the source* (no middleware time is charged for the
//! remote computation — the middleware only pays per streamed result tuple,
//! matching the paper's cost model) and exposes the result as a
//! score-ordered stream.

use crate::table::Table;
use qsys_types::{RelId, Selection, Tuple};
use std::collections::HashMap;
use std::sync::Arc;

/// One equi-join condition between two relations in a pushed-down
/// subexpression.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct JoinCond {
    /// Left relation.
    pub left: RelId,
    /// Join column on the left relation.
    pub left_col: usize,
    /// Right relation.
    pub right: RelId,
    /// Join column on the right relation.
    pub right_col: usize,
}

/// A select-project-join subexpression to evaluate at the source.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SpjSpec {
    /// Participating relations with their pushed-down selections. Must not
    /// repeat a relation (candidate networks never do; see DESIGN.md).
    pub atoms: Vec<(RelId, Option<Selection>)>,
    /// Equi-join conditions connecting the atoms.
    pub joins: Vec<JoinCond>,
}

impl SpjSpec {
    /// A single-relation spec.
    pub fn single(rel: RelId, selection: Option<Selection>) -> SpjSpec {
        SpjSpec {
            atoms: vec![(rel, selection)],
            joins: Vec::new(),
        }
    }

    /// Relations covered, sorted.
    pub fn rels(&self) -> Vec<RelId> {
        let mut rels: Vec<RelId> = self.atoms.iter().map(|(r, _)| *r).collect();
        rels.sort();
        rels
    }

    /// Evaluate against materialized tables, producing the full join result.
    ///
    /// Joins are applied greedily in connectivity order starting from the
    /// first atom; a disconnected spec panics (the optimizer never produces
    /// one — pushed-down subexpressions are connected subgraphs).
    pub fn evaluate(&self, tables: &HashMap<RelId, Arc<Table>>) -> Vec<Tuple> {
        assert!(!self.atoms.is_empty(), "empty SPJ spec");
        let selections: HashMap<RelId, &Selection> = self
            .atoms
            .iter()
            .filter_map(|(r, s)| s.as_ref().map(|sel| (*r, sel)))
            .collect();

        // Seed with the first atom's filtered rows.
        let (first_rel, first_sel) = &self.atoms[0];
        let first_table = tables
            .get(first_rel)
            .unwrap_or_else(|| panic!("no table for {first_rel}"));
        let mut current: Vec<Tuple> = first_table
            .filtered_positions(first_sel.as_ref())
            .into_iter()
            .map(|p| Tuple::single(Arc::clone(&first_table.rows()[p as usize])))
            .collect();
        let mut joined: Vec<RelId> = vec![*first_rel];
        let mut remaining: Vec<RelId> = self.atoms[1..].iter().map(|(r, _)| *r).collect();

        while !remaining.is_empty() {
            // Pick the next atom connected to what we have joined so far.
            let (idx, cond, flipped) = remaining
                .iter()
                .enumerate()
                .find_map(|(i, rel)| {
                    self.joins.iter().find_map(|j| {
                        if j.right == *rel && joined.contains(&j.left) {
                            Some((i, j.clone(), false))
                        } else if j.left == *rel && joined.contains(&j.right) {
                            Some((i, j.clone(), true))
                        } else {
                            None
                        }
                    })
                })
                .expect("SPJ spec must be connected");
            let next_rel = remaining.remove(idx);
            let (have_rel, have_col, next_col) = if flipped {
                (cond.right, cond.right_col, cond.left_col)
            } else {
                (cond.left, cond.left_col, cond.right_col)
            };
            let next_table = tables
                .get(&next_rel)
                .unwrap_or_else(|| panic!("no table for {next_rel}"));
            let sel = selections.get(&next_rel);

            let mut output = Vec::new();
            for t in &current {
                let key = t
                    .value_of(have_rel, have_col)
                    .expect("joined relation missing from tuple");
                for row in next_table.probe(next_col, key) {
                    if sel.is_none_or(|s| s.matches(&row.values)) {
                        output.push(t.join(&Tuple::single(row)));
                    }
                }
            }
            current = output;
            joined.push(next_rel);
        }

        current
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsys_types::{BaseTuple, Value};

    fn table(rel: u32, rows: Vec<(u64, i64, f64)>) -> (RelId, Arc<Table>) {
        let id = RelId::new(rel);
        let rows = rows
            .into_iter()
            .map(|(rid, key, score)| {
                Arc::new(BaseTuple::new(id, rid, vec![Value::Int(key)], score))
            })
            .collect();
        (id, Arc::new(Table::new(id, rows)))
    }

    fn tables() -> (RelId, RelId, HashMap<RelId, Arc<Table>>) {
        let (a, ta) = table(0, vec![(1, 10, 0.9), (2, 20, 0.5), (3, 10, 0.3)]);
        let (b, tb) = table(1, vec![(1, 10, 0.8), (2, 30, 0.7), (3, 10, 0.1)]);
        let mut m = HashMap::new();
        m.insert(a, ta);
        m.insert(b, tb);
        (a, b, m)
    }

    #[test]
    fn two_way_join() {
        let (a, b, tables) = tables();
        let spec = SpjSpec {
            atoms: vec![(a, None), (b, None)],
            joins: vec![JoinCond {
                left: a,
                left_col: 0,
                right: b,
                right_col: 0,
            }],
        };
        let result = spec.evaluate(&tables);
        // Key 10 matches: a{1,3} x b{1,3} = 4 results; key 20/30 match nothing.
        assert_eq!(result.len(), 4);
        for t in &result {
            assert_eq!(t.value_of(a, 0).unwrap(), t.value_of(b, 0).unwrap());
        }
    }

    #[test]
    fn selection_prunes_join() {
        let (a, b, tables) = tables();
        let spec = SpjSpec {
            atoms: vec![(a, Some(Selection::eq(0, Value::Int(10)))), (b, None)],
            joins: vec![JoinCond {
                left: a,
                left_col: 0,
                right: b,
                right_col: 0,
            }],
        };
        let result = spec.evaluate(&tables);
        assert_eq!(result.len(), 4);
        let spec2 = SpjSpec {
            atoms: vec![(a, Some(Selection::eq(0, Value::Int(20)))), (b, None)],
            joins: spec.joins.clone(),
        };
        assert!(spec2.evaluate(&tables).is_empty());
    }

    #[test]
    fn single_atom_is_a_scan() {
        let (a, _, tables) = tables();
        let spec = SpjSpec::single(a, None);
        assert_eq!(spec.evaluate(&tables).len(), 3);
        assert_eq!(spec.rels(), vec![a]);
    }

    #[test]
    fn join_order_does_not_change_result() {
        let (a, b, tables) = tables();
        let j = JoinCond {
            left: a,
            left_col: 0,
            right: b,
            right_col: 0,
        };
        let fwd = SpjSpec {
            atoms: vec![(a, None), (b, None)],
            joins: vec![j.clone()],
        };
        let rev = SpjSpec {
            atoms: vec![(b, None), (a, None)],
            joins: vec![j],
        };
        let mut r1: Vec<_> = fwd
            .evaluate(&tables)
            .iter()
            .map(Tuple::provenance)
            .collect();
        let mut r2: Vec<_> = rev
            .evaluate(&tables)
            .iter()
            .map(Tuple::provenance)
            .collect();
        r1.sort();
        r2.sort();
        assert_eq!(r1, r2);
    }
}

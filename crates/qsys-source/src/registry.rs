//! The source registry: the middleware's gateway to all remote databases.
//!
//! Every tuple that crosses the simulated network — a stream read or a
//! random-access probe — goes through [`Sources`], which charges the shared
//! virtual clock with the base cost plus a Poisson-distributed network delay
//! (mean 2 ms, Section 7 of the paper) and maintains the work counters that
//! Figure 10 reports ("total number of input tuples consumed").

use crate::fault::{FaultInjector, SourceError, Verdict};
use crate::pushdown::SpjSpec;
use crate::stream::SourceStream;
use crate::table::Table;
use qsys_types::dist::{seeded_rng, Poisson};
use qsys_types::{BaseTuple, CostProfile, RelId, Selection, SimClock, TimeCategory, Tuple, Value};
use rand::rngs::StdRng;
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::sync::Arc;

/// Callback that materializes a relation's table on first access (lazy
/// population — see DESIGN.md: only relations a query actually touches are
/// generated). Returning `Arc<Table>` lets several source registries (one
/// per clustered ATC lane) share a single materialized dataset. `Send` so
/// a registry (and the lane owning it) can move onto a lane thread.
pub type TableProvider = Box<dyn Fn(RelId) -> Arc<Table> + Send>;

/// Registry of simulated remote databases.
///
/// One registry belongs to one engine lane and is driven from that lane's
/// thread only — the interior `RefCell`/`Cell` state never crosses threads
/// (`Sources` is `Send`, not `Sync`).
pub struct Sources {
    clock: SimClock,
    cost: CostProfile,
    delay: Poisson,
    rng: RefCell<StdRng>,
    tables: RefCell<HashMap<RelId, Arc<Table>>>,
    provider: Option<TableProvider>,
    tuples_streamed: Cell<u64>,
    stream_rounds: Cell<u64>,
    probes: Cell<u64>,
    probe_result_tuples: Cell<u64>,
    /// Optional fault schedule. `None` (the default) keeps every fetch
    /// infallible and byte-identical to the fault-free build; faults apply
    /// only through [`Sources::try_read`]/[`Sources::try_probe`] — the
    /// legacy [`Sources::read`]/[`Sources::probe`] never consult it (used
    /// by recovery replay and legacy tests, which model local work).
    injector: Option<FaultInjector>,
    /// Per-fetch timeout applied to fault-inflated (slow) rounds only.
    fetch_timeout_us: Cell<Option<u64>>,
}

impl Sources {
    /// Build a registry with explicit tables only.
    pub fn new(clock: SimClock, cost: CostProfile, seed: u64) -> Sources {
        Sources {
            clock,
            delay: Poisson::new(cost.mean_network_delay_us as f64),
            cost,
            rng: RefCell::new(seeded_rng(seed)),
            tables: RefCell::new(HashMap::new()),
            provider: None,
            tuples_streamed: Cell::new(0),
            stream_rounds: Cell::new(0),
            probes: Cell::new(0),
            probe_result_tuples: Cell::new(0),
            injector: None,
            fetch_timeout_us: Cell::new(None),
        }
    }

    /// Install a fault injector. Fetches via [`Sources::try_read`] and
    /// [`Sources::try_probe`] become fallible according to its schedule.
    pub fn set_injector(&mut self, injector: FaultInjector) {
        self.injector = Some(injector);
    }

    /// The installed injector, if any.
    pub fn injector(&self) -> Option<&FaultInjector> {
        self.injector.as_ref()
    }

    /// Whether a fault schedule is installed (the governed fetch path uses
    /// this to skip all fault bookkeeping on clean builds).
    pub fn faults_enabled(&self) -> bool {
        self.injector.is_some()
    }

    /// Set the per-fetch timeout (virtual µs) applied to fault-inflated
    /// rounds. Normal rounds are never timed out — only a `slow` schedule
    /// can push a fetch past the limit, so an unfaulted relation can never
    /// exhaust a retry budget.
    pub fn set_fetch_timeout(&self, timeout_us: Option<u64>) {
        self.fetch_timeout_us.set(timeout_us);
    }

    /// Build a registry that materializes tables lazily via `provider`.
    pub fn with_provider(
        clock: SimClock,
        cost: CostProfile,
        seed: u64,
        provider: TableProvider,
    ) -> Sources {
        let mut s = Sources::new(clock, cost, seed);
        s.provider = Some(provider);
        s
    }

    /// Register a table explicitly.
    pub fn register(&self, table: Table) {
        self.register_shared(Arc::new(table));
    }

    /// Register a shared table handle.
    pub fn register_shared(&self, table: Arc<Table>) {
        self.tables.borrow_mut().insert(table.rel(), table);
    }

    /// The table for `rel`, materializing lazily if a provider is set.
    /// Panics if the relation is unknown to both the registry and provider.
    pub fn table(&self, rel: RelId) -> Arc<Table> {
        if let Some(t) = self.tables.borrow().get(&rel) {
            return Arc::clone(t);
        }
        let provider = self
            .provider
            .as_ref()
            .unwrap_or_else(|| panic!("no table registered for {rel} and no provider"));
        let table = provider(rel);
        self.tables.borrow_mut().insert(rel, Arc::clone(&table));
        table
    }

    /// Whether a table is currently materialized.
    pub fn is_materialized(&self, rel: RelId) -> bool {
        self.tables.borrow().contains_key(&rel)
    }

    /// Open a streaming scan of `rel` with an optional pushed-down
    /// selection. No time is charged until tuples are read.
    pub fn open_stream(&self, rel: RelId, selection: Option<Selection>) -> SourceStream {
        SourceStream::base(self.table(rel), selection)
    }

    /// Evaluate an SPJ subexpression at the source and expose the result as
    /// a score-ordered stream. The remote computation itself is free to the
    /// middleware (the paper's cost model: you pay per tuple streamed in).
    pub fn open_pushdown(&self, spec: &SpjSpec) -> SourceStream {
        let mut tables = HashMap::new();
        for (rel, _) in &spec.atoms {
            tables.insert(*rel, self.table(*rel));
        }
        let tuples = spec.evaluate(&tables);
        SourceStream::pushdown(tuples, spec.rels())
    }

    /// Read the next tuple from a stream, charging stream-read time. The
    /// Poisson round-trip delay is paid once per fetch round: the first
    /// read of a round charges it and grants [`CostProfile::fetch_batch`]
    /// tuples of credit, so fetch-ahead amortizes the network exactly like
    /// a JDBC fetch size. `fetch_batch = 1` (the default) reproduces the
    /// paper's one-tuple-per-round cost model, delay draw for delay draw.
    /// The tuple *sequence* is identical at every batch size — batching
    /// changes when time is charged, never what is delivered.
    pub fn read(&self, stream: &mut SourceStream) -> Option<Tuple> {
        let out = stream.advance();
        if out.is_some() {
            let mut us = self.cost.stream_tuple_us;
            if stream.round_credit == 0 {
                us += self.network_delay();
                self.stream_rounds.set(self.stream_rounds.get() + 1);
                stream.round_credit = self.cost.fetch_batch.max(1);
            }
            stream.round_credit -= 1;
            self.clock.charge(TimeCategory::StreamRead, us);
            self.tuples_streamed.set(self.tuples_streamed.get() + 1);
        }
        out
    }

    /// Fallible stream read: like [`Sources::read`], but consults the fault
    /// injector when one is installed. The injector rules once per fetch
    /// *round* — batched mid-round reads are already paid for and local, so
    /// they cannot fail. A failed round charges a fixed round-trip (the
    /// mean network delay — no RNG, so fault schedules never perturb the
    /// delay sequence of clean relations) and leaves the cursor untouched:
    /// a retry fetches the same tuple. With no injector this is exactly
    /// `Ok(self.read(stream))`.
    pub fn try_read(&self, stream: &mut SourceStream) -> Result<Option<Tuple>, SourceError> {
        let Some(inj) = &self.injector else {
            return Ok(self.read(stream));
        };
        if stream.exhausted() {
            return Ok(None);
        }
        let opens_round = stream.round_credit == 0;
        let mut slow = None;
        if opens_round && !inj.all_clear(stream.rels()) {
            match inj.verdict(stream.rels(), self.clock.now_us()) {
                Verdict::Clear => {}
                Verdict::Slow { rel, mult } => slow = Some((rel, mult)),
                Verdict::Fail(e) => {
                    self.clock
                        .charge(TimeCategory::StreamRead, self.cost.mean_network_delay_us);
                    return Err(e);
                }
            }
        }
        let mut us = self.cost.stream_tuple_us;
        if opens_round {
            let mut delay = self.network_delay();
            if let Some((rel, mult)) = slow {
                delay = (delay as f64 * mult).round() as u64;
                if let Some(limit) = self.fetch_timeout_us.get() {
                    if delay > limit {
                        // The wait up to the timeout is real simulated time;
                        // the tuple stays at the source for the retry.
                        self.clock.charge(TimeCategory::StreamRead, limit);
                        return Err(SourceError::Timeout { rel });
                    }
                }
            }
            us += delay;
            self.stream_rounds.set(self.stream_rounds.get() + 1);
            stream.round_credit = self.cost.fetch_batch.max(1);
        }
        stream.round_credit -= 1;
        self.clock.charge(TimeCategory::StreamRead, us);
        self.tuples_streamed.set(self.tuples_streamed.get() + 1);
        Ok(stream.advance())
    }

    /// Probe `rel` for rows whose `column` equals `value` — a remote
    /// two-way semijoin. Charges random-access time plus a network delay.
    pub fn probe(&self, rel: RelId, column: usize, value: &Value) -> Vec<Arc<BaseTuple>> {
        let us = self.cost.probe_us + self.network_delay();
        self.clock.charge(TimeCategory::RandomAccess, us);
        self.probes.set(self.probes.get() + 1);
        let hits = self.table(rel).probe(column, value);
        self.probe_result_tuples
            .set(self.probe_result_tuples.get() + hits.len() as u64);
        hits
    }

    /// Fallible probe: like [`Sources::probe`], but consults the fault
    /// injector when one is installed (every probe is its own network
    /// round). Failed probes charge a fixed round-trip; timed-out probes
    /// charge exactly the timeout. With no injector this is exactly
    /// `Ok(self.probe(rel, column, value))`.
    pub fn try_probe(
        &self,
        rel: RelId,
        column: usize,
        value: &Value,
    ) -> Result<Vec<Arc<BaseTuple>>, SourceError> {
        let Some(inj) = &self.injector else {
            return Ok(self.probe(rel, column, value));
        };
        let mut slow = None;
        if !inj.all_clear(&[rel]) {
            match inj.verdict(&[rel], self.clock.now_us()) {
                Verdict::Clear => {}
                Verdict::Slow { rel, mult } => slow = Some((rel, mult)),
                Verdict::Fail(e) => {
                    self.clock
                        .charge(TimeCategory::RandomAccess, self.cost.mean_network_delay_us);
                    return Err(e);
                }
            }
        }
        let mut delay = self.network_delay();
        if let Some((rel, mult)) = slow {
            delay = (delay as f64 * mult).round() as u64;
            if let Some(limit) = self.fetch_timeout_us.get() {
                if delay > limit {
                    self.clock.charge(TimeCategory::RandomAccess, limit);
                    return Err(SourceError::Timeout { rel });
                }
            }
        }
        self.clock
            .charge(TimeCategory::RandomAccess, self.cost.probe_us + delay);
        self.probes.set(self.probes.get() + 1);
        let hits = self.table(rel).probe(column, value);
        self.probe_result_tuples
            .set(self.probe_result_tuples.get() + hits.len() as u64);
        Ok(hits)
    }

    fn network_delay(&self) -> u64 {
        self.delay.sample(&mut *self.rng.borrow_mut())
    }

    /// The shared clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The cost profile in force.
    pub fn cost_profile(&self) -> &CostProfile {
        &self.cost
    }

    /// Tuples streamed so far (Figure 10's work metric, streaming part).
    pub fn tuples_streamed(&self) -> u64 {
        self.tuples_streamed.get()
    }

    /// Simulated network rounds spent on stream reads so far. Equals
    /// [`Self::tuples_streamed`] when `fetch_batch` is 1; fetch-ahead
    /// makes it smaller (⌈delivered / fetch_batch⌉ per stream).
    pub fn stream_rounds(&self) -> u64 {
        self.stream_rounds.get()
    }

    /// Remote probes performed so far.
    pub fn probes(&self) -> u64 {
        self.probes.get()
    }

    /// Tuples returned by remote probes so far.
    pub fn probe_result_tuples(&self) -> u64 {
        self.probe_result_tuples.get()
    }

    /// Total input tuples consumed (streamed + probe results): the metric of
    /// Figure 10.
    pub fn tuples_consumed(&self) -> u64 {
        self.tuples_streamed() + self.probe_result_tuples()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk_table(rel: u32, n: u64) -> Table {
        let id = RelId::new(rel);
        let rows = (0..n)
            .map(|i| {
                Arc::new(BaseTuple::new(
                    id,
                    i,
                    vec![Value::Int((i % 3) as i64)],
                    1.0 - i as f64 / n as f64,
                ))
            })
            .collect();
        Table::new(id, rows)
    }

    fn sources() -> Sources {
        let s = Sources::new(SimClock::new(), CostProfile::default(), 42);
        s.register(mk_table(0, 9));
        s.register(mk_table(1, 6));
        s
    }

    #[test]
    fn stream_reads_charge_the_clock() {
        let s = sources();
        let mut stream = s.open_stream(RelId::new(0), None);
        assert_eq!(s.clock().breakdown().stream_read_us, 0);
        let t = s.read(&mut stream).unwrap();
        assert_eq!(t.arity(), 1);
        assert!(s.clock().breakdown().stream_read_us >= 20);
        assert_eq!(s.tuples_streamed(), 1);
    }

    #[test]
    fn probes_charge_random_access() {
        let s = sources();
        let hits = s.probe(RelId::new(0), 0, &Value::Int(1));
        assert_eq!(hits.len(), 3);
        assert!(s.clock().breakdown().random_access_us >= 50);
        assert_eq!(s.probes(), 1);
        assert_eq!(s.probe_result_tuples(), 3);
        assert_eq!(s.tuples_consumed(), 3);
    }

    #[test]
    fn exhausted_stream_charges_nothing_more() {
        let s = sources();
        let mut stream = s.open_stream(RelId::new(1), None);
        while s.read(&mut stream).is_some() {}
        let before = s.clock().breakdown().stream_read_us;
        assert!(s.read(&mut stream).is_none());
        assert_eq!(s.clock().breakdown().stream_read_us, before);
        assert_eq!(s.tuples_streamed(), 6);
    }

    #[test]
    fn lazy_provider_materializes_on_demand() {
        let s = Sources::with_provider(
            SimClock::new(),
            CostProfile::default(),
            1,
            Box::new(|rel| Arc::new(mk_table(rel.0, 4))),
        );
        assert!(!s.is_materialized(RelId::new(7)));
        let t = s.table(RelId::new(7));
        assert_eq!(t.len(), 4);
        assert!(s.is_materialized(RelId::new(7)));
    }

    #[test]
    fn pushdown_stream_is_score_ordered() {
        let s = sources();
        use crate::pushdown::JoinCond;
        let spec = SpjSpec {
            atoms: vec![(RelId::new(0), None), (RelId::new(1), None)],
            joins: vec![JoinCond {
                left: RelId::new(0),
                left_col: 0,
                right: RelId::new(1),
                right_col: 0,
            }],
        };
        let mut stream = s.open_pushdown(&spec);
        let mut last = f64::INFINITY;
        let mut n = 0;
        while let Some(t) = s.read(&mut stream) {
            let p = t.raw_score_product();
            assert!(p <= last + 1e-12);
            last = p;
            n += 1;
        }
        assert!(n > 0);
    }

    #[test]
    fn fetch_ahead_amortizes_network_rounds() {
        let run = |fetch_batch: usize| {
            let cost = CostProfile {
                fetch_batch,
                ..CostProfile::default()
            };
            let s = Sources::new(SimClock::new(), cost, 42);
            s.register(mk_table(0, 9));
            let mut stream = s.open_stream(RelId::new(0), None);
            let mut ids = Vec::new();
            while let Some(t) = s.read(&mut stream) {
                ids.push(t.parts()[0].row_id);
            }
            (ids, s.stream_rounds(), s.clock().breakdown().stream_read_us)
        };
        let (ids1, rounds1, us1) = run(1);
        let (ids4, rounds4, us4) = run(4);
        assert_eq!(ids1, ids4, "batching must not change the sequence");
        assert_eq!(rounds1, 9, "one round per tuple unbatched");
        assert_eq!(rounds4, 3, "ceil(9 / 4) rounds batched");
        assert!(us4 < us1, "fewer rounds, less simulated time");
        // Per-tuple CPU still charged for every tuple.
        assert!(us4 >= 9 * CostProfile::default().stream_tuple_us);
    }

    #[test]
    fn try_read_without_injector_matches_read() {
        let a = sources();
        let b = sources();
        let mut sa = a.open_stream(RelId::new(0), None);
        let mut sb = b.open_stream(RelId::new(0), None);
        loop {
            let x = a.read(&mut sa);
            let y = b.try_read(&mut sb).expect("infallible without injector");
            assert_eq!(x.is_none(), y.is_none());
            if x.is_none() {
                break;
            }
        }
        assert_eq!(
            a.clock().breakdown().stream_read_us,
            b.clock().breakdown().stream_read_us
        );
    }

    #[test]
    fn unfaulted_rel_sees_identical_delays_under_injector() {
        use crate::fault::{FaultInjector, FaultSpec};
        let plain = sources();
        let mut chaotic = sources();
        // Faults scheduled only for rel 1; rel 0 must be untouched.
        let spec = FaultSpec::parse("seed=5; rel1:transient=0.9").unwrap();
        chaotic.set_injector(FaultInjector::new(spec, 0));
        let mut sp = plain.open_stream(RelId::new(0), None);
        let mut sc = chaotic.open_stream(RelId::new(0), None);
        while plain.read(&mut sp).is_some() {
            chaotic.try_read(&mut sc).unwrap().unwrap();
        }
        assert_eq!(
            plain.clock().breakdown().stream_read_us,
            chaotic.clock().breakdown().stream_read_us,
            "a schedule on rel 1 must not perturb rel 0's virtual time"
        );
    }

    #[test]
    fn outage_fails_fetches_and_leaves_the_cursor() {
        use crate::fault::{FaultInjector, FaultSpec, SourceError};
        let mut s = sources();
        let spec = FaultSpec::parse("rel0:outage=0..").unwrap();
        s.set_injector(FaultInjector::new(spec, 0));
        let mut stream = s.open_stream(RelId::new(0), None);
        for _ in 0..3 {
            assert_eq!(
                s.try_read(&mut stream),
                Err(SourceError::Outage { rel: RelId::new(0) })
            );
        }
        assert_eq!(stream.delivered(), 0, "failed rounds deliver nothing");
        assert_eq!(s.tuples_streamed(), 0);
        // Each failed round still burned a round-trip of simulated time.
        assert_eq!(
            s.clock().breakdown().stream_read_us,
            3 * CostProfile::default().mean_network_delay_us
        );
        // Probes fail too.
        assert!(s.try_probe(RelId::new(0), 0, &Value::Int(1)).is_err());
    }

    #[test]
    fn slow_rounds_time_out_only_with_a_timeout_set() {
        use crate::fault::{FaultInjector, FaultSpec, SourceError};
        let build = || {
            let mut s = sources();
            let spec = FaultSpec::parse("rel0:slow=1x1000").unwrap();
            s.set_injector(FaultInjector::new(spec, 0));
            s
        };
        // No timeout: the slow round delivers, just late.
        let s = build();
        let mut stream = s.open_stream(RelId::new(0), None);
        assert!(s.try_read(&mut stream).unwrap().is_some());
        assert!(s.clock().breakdown().stream_read_us > 100_000);
        // Tight timeout: the same schedule times out and charges the cap.
        let s = build();
        s.set_fetch_timeout(Some(10_000));
        let mut stream = s.open_stream(RelId::new(0), None);
        assert_eq!(
            s.try_read(&mut stream),
            Err(SourceError::Timeout { rel: RelId::new(0) })
        );
        assert_eq!(s.clock().breakdown().stream_read_us, 10_000);
        assert_eq!(stream.delivered(), 0);
    }

    #[test]
    fn deterministic_delays_from_seed() {
        let run = || {
            let s = Sources::new(SimClock::new(), CostProfile::default(), 99);
            s.register(mk_table(0, 20));
            let mut stream = s.open_stream(RelId::new(0), None);
            while s.read(&mut stream).is_some() {}
            s.clock().breakdown().stream_read_us
        };
        assert_eq!(run(), run());
    }
}

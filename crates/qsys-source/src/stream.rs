//! Score-ordered tuple streams.
//!
//! A [`SourceStream`] is the middleware's view of one remote subquery: a
//! cursor over score-ordered results. It may cover a single base relation
//! (with an optional pushed-down selection) or a pushed-down
//! select-project-join subexpression. The stream itself is passive — the
//! [`Sources`](crate::registry::Sources) registry performs reads so that
//! every tuple crossing the simulated network charges the clock.

use crate::table::Table;
use qsys_types::{RelId, Selection, Tuple};
use std::sync::Arc;

/// What backs a stream.
#[derive(Debug)]
pub enum StreamKind {
    /// A base relation scan (optionally filtered), delivered in score order.
    Base {
        /// The backing table.
        table: Arc<Table>,
        /// Positions into the table's score-ordered rows that satisfy the
        /// pushed-down selection.
        positions: Vec<u32>,
    },
    /// A pushed-down SPJ subexpression, pre-joined at the source and
    /// delivered in nonincreasing order of combined (product) score.
    Pushdown {
        /// Joined results, sorted by product score, descending.
        tuples: Vec<Tuple>,
    },
}

/// A cursor over a score-ordered remote result stream.
#[derive(Debug)]
pub struct SourceStream {
    kind: StreamKind,
    /// Relations covered by each delivered tuple.
    rels: Vec<RelId>,
    /// Pushed-down selection (kept for display/debugging).
    selection: Option<Selection>,
    cursor: usize,
    /// Fetch-ahead credit: tuples already paid for by the current network
    /// round. While positive, reads cost only per-tuple CPU; at zero the
    /// next read opens a new round (one round-trip delay for up to
    /// [`CostProfile::fetch_batch`](qsys_types::CostProfile::fetch_batch)
    /// tuples). Maintained by [`Sources::read`](crate::registry::Sources).
    pub(crate) round_credit: usize,
}

impl SourceStream {
    /// Build a base-relation stream.
    pub fn base(table: Arc<Table>, selection: Option<Selection>) -> SourceStream {
        let positions = table.filtered_positions(selection.as_ref());
        let rels = vec![table.rel()];
        SourceStream {
            kind: StreamKind::Base { table, positions },
            rels,
            selection,
            cursor: 0,
            round_credit: 0,
        }
    }

    /// Build a pushdown stream from pre-joined, pre-sorted tuples.
    pub fn pushdown(mut tuples: Vec<Tuple>, rels: Vec<RelId>) -> SourceStream {
        tuples.sort_by(|a, b| b.raw_score_product().total_cmp(&a.raw_score_product()));
        SourceStream {
            kind: StreamKind::Pushdown { tuples },
            rels,
            selection: None,
            cursor: 0,
            round_credit: 0,
        }
    }

    /// Relations covered by every tuple this stream delivers (sorted).
    pub fn rels(&self) -> &[RelId] {
        &self.rels
    }

    /// The pushed-down selection, if any.
    pub fn selection(&self) -> Option<&Selection> {
        self.selection.as_ref()
    }

    /// Number of tuples delivered so far.
    pub fn delivered(&self) -> usize {
        self.cursor
    }

    /// Total number of tuples this stream can deliver.
    pub fn total(&self) -> usize {
        match &self.kind {
            StreamKind::Base { positions, .. } => positions.len(),
            StreamKind::Pushdown { tuples } => tuples.len(),
        }
    }

    /// Whether all tuples have been delivered.
    pub fn exhausted(&self) -> bool {
        self.cursor >= self.total()
    }

    /// Upper bound on the product of raw score components of any tuple not
    /// yet delivered; `0.0` once exhausted. Streams are score-ordered, so
    /// this is exactly the next tuple's product score.
    pub fn bound(&self) -> f64 {
        match &self.kind {
            StreamKind::Base { table, positions } => positions
                .get(self.cursor)
                .map(|&p| table.rows()[p as usize].raw_score)
                .unwrap_or(0.0),
            StreamKind::Pushdown { tuples } => tuples
                .get(self.cursor)
                .map(|t| t.raw_score_product())
                .unwrap_or(0.0),
        }
    }

    /// Advance and return the next tuple. Crate-internal: goes through
    /// [`Sources::read`](crate::registry::Sources::read) so time is charged.
    pub(crate) fn advance(&mut self) -> Option<Tuple> {
        let out = match &self.kind {
            StreamKind::Base { table, positions } => positions
                .get(self.cursor)
                .map(|&p| Tuple::single(Arc::clone(&table.rows()[p as usize]))),
            StreamKind::Pushdown { tuples } => tuples.get(self.cursor).cloned(),
        };
        if out.is_some() {
            self.cursor += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsys_types::{BaseTuple, Value};

    fn table() -> Arc<Table> {
        let rel = RelId::new(0);
        let rows = (0..5)
            .map(|i| {
                Arc::new(BaseTuple::new(
                    rel,
                    i,
                    vec![Value::Int(i as i64 % 2)],
                    1.0 - i as f64 * 0.1,
                ))
            })
            .collect();
        Arc::new(Table::new(rel, rows))
    }

    #[test]
    fn base_stream_delivers_in_score_order() {
        let mut s = SourceStream::base(table(), None);
        assert_eq!(s.total(), 5);
        let mut last = f64::INFINITY;
        while let Some(t) = s.advance() {
            let score = t.raw_score_product();
            assert!(score <= last);
            last = score;
        }
        assert!(s.exhausted());
        assert_eq!(s.bound(), 0.0);
    }

    #[test]
    fn bound_tracks_next_tuple() {
        let mut s = SourceStream::base(table(), None);
        assert!((s.bound() - 1.0).abs() < 1e-12);
        s.advance();
        assert!((s.bound() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn selection_filters_stream() {
        let sel = Selection::eq(0, Value::Int(1));
        let mut s = SourceStream::base(table(), Some(sel));
        let mut n = 0;
        while let Some(t) = s.advance() {
            assert_eq!(t.parts()[0].value(0), &Value::Int(1));
            n += 1;
        }
        assert_eq!(n, 2); // rows with odd ids: 1, 3
    }

    #[test]
    fn pushdown_stream_sorts_by_product() {
        let rel_a = RelId::new(1);
        let rel_b = RelId::new(2);
        let mk = |ida: u64, sa: f64, idb: u64, sb: f64| {
            Tuple::from_parts(vec![
                Arc::new(BaseTuple::new(rel_a, ida, vec![], sa)),
                Arc::new(BaseTuple::new(rel_b, idb, vec![], sb)),
            ])
        };
        let s = SourceStream::pushdown(
            vec![mk(1, 0.5, 1, 0.5), mk(2, 0.9, 2, 0.9), mk(3, 0.1, 3, 1.0)],
            vec![rel_a, rel_b],
        );
        assert!((s.bound() - 0.81).abs() < 1e-12);
        assert_eq!(s.rels(), &[rel_a, rel_b]);
    }
}

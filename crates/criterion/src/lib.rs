//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors a minimal, API-compatible subset of criterion: the
//! `criterion_group!`/`criterion_main!` macros, benchmark groups,
//! `bench_function` / `bench_with_input`, and `Bencher::iter` /
//! `iter_batched`. Timing is a plain mean/min/max over `sample_size`
//! wall-clock samples — no outlier analysis, no HTML reports — printed in
//! a `group/name: mean …` line per benchmark, plus a machine-readable
//! `CRITERION-JSON {…}` line consumed by the repo's bench scripts.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup (ignored beyond API compatibility).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Fresh setup per iteration.
    PerIteration,
    /// Small inputs (real criterion batches these; we run one per sample).
    SmallInput,
    /// Large inputs.
    LargeInput,
}

/// A benchmark identifier: `function_name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Compose an id from a function name and a parameter value.
    pub fn new(function_name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// Drives the measured closure.
pub struct Bencher {
    samples: usize,
    /// Mean per-sample duration, filled by the `iter*` methods.
    last_mean_ns: f64,
    last_min_ns: f64,
    last_max_ns: f64,
}

impl Bencher {
    /// Measure `f`, called repeatedly.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // Warm-up.
        std::hint::black_box(f());
        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            std::hint::black_box(f());
            times.push(t.elapsed());
        }
        self.record(&times);
    }

    /// Measure `routine` over values produced by `setup` (setup time is
    /// excluded from the measurement).
    pub fn iter_batched<S, O>(
        &mut self,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> O,
        _size: BatchSize,
    ) {
        std::hint::black_box(routine(setup()));
        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            times.push(t.elapsed());
        }
        self.record(&times);
    }

    fn record(&mut self, times: &[Duration]) {
        let ns: Vec<f64> = times.iter().map(|d| d.as_nanos() as f64).collect();
        self.last_mean_ns = ns.iter().sum::<f64>() / ns.len().max(1) as f64;
        self.last_min_ns = ns.iter().cloned().fold(f64::INFINITY, f64::min);
        self.last_max_ns = ns.iter().cloned().fold(0.0, f64::max);
    }
}

fn human(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            last_mean_ns: 0.0,
            last_min_ns: 0.0,
            last_max_ns: 0.0,
        };
        f(&mut b);
        println!(
            "{}/{}: mean {}  min {}  max {}  ({} samples)",
            self.name,
            id.id,
            human(b.last_mean_ns),
            human(b.last_min_ns),
            human(b.last_max_ns),
            self.sample_size
        );
        println!(
            "CRITERION-JSON {{\"group\":\"{}\",\"bench\":\"{}\",\"mean_ns\":{:.1},\"min_ns\":{:.1},\"max_ns\":{:.1}}}",
            self.name, id.id, b.last_mean_ns, b.last_min_ns, b.last_max_ns
        );
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group (no-op beyond API compatibility).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut runs = 0usize;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
        group.bench_with_input(BenchmarkId::new("param", 7), &7usize, |b, &x| {
            b.iter_batched(|| x, |v| v * 2, BatchSize::PerIteration)
        });
        group.finish();
    }
}

//! Workload generators reproducing Section 7's experimental setup.
//!
//! - [`gus`]: the synthetic workload over a 358-relation Genomics Unified
//!   Schema-like graph, with Zipfian scores, join keys, and score-function
//!   coefficients, and 15 two-keyword user queries drawn from a Zipf
//!   distribution over biological terms.
//! - [`pfam`]: the "real data" substitute — a faithful miniature of the
//!   Pfam + InterPro integrated protein-family databases with a cross-
//!   database mapping table, text-similarity scores, and a publication-year
//!   score attribute (see DESIGN.md "Substitutions").
//!
//! Both produce a [`Workload`]: catalog + keyword index + shared lazy table
//! store + the query script.
//!
//! [`faults`] rides along for chaos experiments: it generates the
//! deterministic `QSYS_FAULTS` schedule strings the engine's fault
//! injector consumes.

pub mod faults;
pub mod gus;
pub mod pfam;
pub mod tables;

pub use faults::FaultPlan;
pub use gus::GusConfig;
pub use pfam::PfamConfig;
pub use tables::{ScoreKind, SharedTables, TableGenSpec};

use qsys_catalog::{Catalog, EdgeId, KeywordIndex};
use qsys_types::UserId;
use std::collections::HashMap;

/// One scripted keyword query.
#[derive(Clone, Debug)]
pub struct WorkloadQuery {
    /// The keyword search text (phrases quoted).
    pub keywords: String,
    /// The posing user.
    pub user: UserId,
    /// Per-user learned edge-cost overrides (Q System scoring).
    pub edge_costs: Option<HashMap<EdgeId, f64>>,
    /// Virtual arrival time (µs); queries arrive up to 6 s apart (§7).
    pub arrival_us: u64,
}

/// A complete, self-describing workload.
pub struct Workload {
    /// The schema graph.
    pub catalog: Catalog,
    /// Keyword → relation matches.
    pub index: KeywordIndex,
    /// Lazily-materialized shared table store.
    pub tables: SharedTables,
    /// The query script, in arrival order.
    pub queries: Vec<WorkloadQuery>,
    /// Human-readable name ("gus", "pfam").
    pub name: &'static str,
}

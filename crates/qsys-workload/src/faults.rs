//! Fault-schedule generation for chaos experiments.
//!
//! [`FaultPlan`] assembles the `QSYS_FAULTS` schedule strings the engine's
//! fault injector parses (`qsys_source::fault::FaultSpec`): deterministic
//! seeded transient-error rates, slow rounds, hard outage windows, and the
//! lane panic hook. The interface is the grammar *string* on purpose —
//! workload generation stays independent of the source layer, and the same
//! plan can be handed to `EngineConfig`, an environment variable, or a CI
//! matrix leg unchanged.
//!
//! ```
//! use qsys_workload::faults::FaultPlan;
//! let spec = FaultPlan::new(7)
//!     .transient(0.01)
//!     .outage(3, 0, None)
//!     .slow(5, 0.2, 6.0)
//!     .build();
//! assert_eq!(spec, "seed=7; transient=0.01; rel3:outage=0..; rel5:slow=0.2x6");
//! ```

/// Builder for one deterministic fault schedule.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    seed: u64,
    clauses: Vec<String>,
}

impl FaultPlan {
    /// Start a plan; `seed` drives every probabilistic draw the injector
    /// makes, so equal plans replay identically.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            clauses: Vec::new(),
        }
    }

    /// Default transient-error rate applied to every relation without its
    /// own scoped clause (`rate` in `[0, 1]`).
    pub fn transient(mut self, rate: f64) -> Self {
        self.clauses.push(format!("transient={rate}"));
        self
    }

    /// Default slow-round schedule: each fetch round is slowed with
    /// probability `rate`, its network delay multiplied by `mult`.
    pub fn slow_default(mut self, rate: f64, mult: f64) -> Self {
        self.clauses.push(format!("slow={rate}x{mult}"));
        self
    }

    /// Transient-error rate for one relation (replaces the defaults for
    /// that relation).
    pub fn rel_transient(mut self, rel: u32, rate: f64) -> Self {
        self.clauses.push(format!("rel{rel}:transient={rate}"));
        self
    }

    /// Slow-round schedule for one relation.
    pub fn slow(mut self, rel: u32, rate: f64, mult: f64) -> Self {
        self.clauses.push(format!("rel{rel}:slow={rate}x{mult}"));
        self
    }

    /// Hard outage of one relation over `[start_us, end_us)` virtual time;
    /// `None` keeps it dark for the rest of the run.
    pub fn outage(mut self, rel: u32, start_us: u64, end_us: Option<u64>) -> Self {
        let end = end_us.map(|e| e.to_string()).unwrap_or_default();
        self.clauses
            .push(format!("rel{rel}:outage={start_us}..{end}"));
        self
    }

    /// Panic the lane on the first fetch touching `rel` (exercises the
    /// engine's lane panic isolation).
    pub fn panic_on(mut self, rel: u32) -> Self {
        self.clauses.push(format!("rel{rel}:panic"));
        self
    }

    /// Render the `QSYS_FAULTS` schedule string.
    pub fn build(&self) -> String {
        let mut out = format!("seed={}", self.seed);
        for clause in &self.clauses {
            out.push_str("; ");
            out.push_str(clause);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_only_plan() {
        assert_eq!(FaultPlan::new(41).build(), "seed=41");
    }

    #[test]
    fn clauses_render_in_insertion_order() {
        let spec = FaultPlan::new(7)
            .transient(0.05)
            .slow_default(0.1, 4.0)
            .rel_transient(2, 0.5)
            .outage(3, 1_000, Some(2_000))
            .outage(9, 0, None)
            .panic_on(11)
            .build();
        assert_eq!(
            spec,
            "seed=7; transient=0.05; slow=0.1x4; rel2:transient=0.5; \
             rel3:outage=1000..2000; rel9:outage=0..; rel11:panic"
        );
    }
}

//! Lazy, shared table materialization.
//!
//! The paper populated all 358 GUS relations with 20k–100k tuples each; we
//! keep the same per-relation recipe but materialize a relation only when a
//! query first touches it (top-k execution reads small prefixes anyway —
//! generating the rest of the schema would be pure overhead). Generated
//! tables are shared across engine lanes via `Arc`, so clustered ATCs see
//! one dataset.

use qsys_source::{Table, TableProvider};
use qsys_types::dist::{seeded_rng, Zipf};
use qsys_types::{BaseTuple, RelId, Value};
use rand::Rng;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// How a relation's score attribute is distributed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ScoreKind {
    /// Zipfian similarity in `(0, 1]` (IR-style keyword scores).
    #[default]
    ZipfSimilarity,
    /// Publication-year score: uniform years normalized into `(0, 1]` —
    /// the extra score attribute of the Pfam/InterPro workload (§7.5).
    PublicationYear,
}

/// Generation recipe for one relation.
///
/// Row layout is fixed across the workspace's generated schemas:
/// `c0` = key-1 (Int), `c1` = key-2 (Int), `c2` = term (Str),
/// `c3` = score (Float; meaningful only when `scored`).
#[derive(Clone, Debug)]
pub struct TableGenSpec {
    /// Number of rows.
    pub rows: u64,
    /// Join-key domain size (keys drawn Zipfian over `0..key_domain`).
    pub key_domain: u64,
    /// Whether the relation carries a similarity-score attribute.
    pub scored: bool,
    /// Score distribution.
    pub score_kind: ScoreKind,
    /// Terms embedded in column `c2`, with target selectivities — content
    /// keyword matches select on these.
    pub terms: Vec<(String, f64)>,
    /// Zipf exponent for keys and scores.
    pub skew: f64,
}

impl Default for TableGenSpec {
    fn default() -> Self {
        TableGenSpec {
            rows: 2_000,
            key_domain: 512,
            scored: true,
            score_kind: ScoreKind::ZipfSimilarity,
            terms: Vec::new(),
            skew: 1.0,
        }
    }
}

/// Shared lazy table store; clones share the cache. `Send + Sync`: when
/// clustered ATC lanes run on threads, every lane's source registry pulls
/// from this one materialized dataset. The map lock is held only for slot
/// lookup; generation happens under the relation's own `OnceLock`, so two
/// lanes first-touching the *same* relation wait (generate-once) while
/// first touches of *different* relations generate concurrently.
#[derive(Clone)]
pub struct SharedTables {
    inner: Arc<Inner>,
}

type TableSlot = Arc<std::sync::OnceLock<Arc<Table>>>;

struct Inner {
    seed: u64,
    specs: HashMap<RelId, TableGenSpec>,
    cache: Mutex<HashMap<RelId, TableSlot>>,
}

impl SharedTables {
    /// Build a store from per-relation specs.
    pub fn new(seed: u64, specs: HashMap<RelId, TableGenSpec>) -> SharedTables {
        SharedTables {
            inner: Arc::new(Inner {
                seed,
                specs,
                cache: Mutex::new(HashMap::new()),
            }),
        }
    }

    /// The table for `rel`, generating it deterministically on first use.
    pub fn table(&self, rel: RelId) -> Arc<Table> {
        let slot = {
            let mut cache = self.inner.cache.lock().unwrap_or_else(|e| e.into_inner());
            Arc::clone(cache.entry(rel).or_default())
        };
        Arc::clone(slot.get_or_init(|| {
            let spec = self
                .inner
                .specs
                .get(&rel)
                .unwrap_or_else(|| panic!("no generation spec for {rel}"));
            Arc::new(generate_table(rel, spec, self.inner.seed))
        }))
    }

    /// Number of currently materialized tables.
    pub fn materialized(&self) -> usize {
        self.inner
            .cache
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .values()
            .filter(|slot| slot.get().is_some())
            .count()
    }

    /// Adapt into the `Sources` provider interface.
    pub fn provider(&self) -> TableProvider {
        let store = self.clone();
        Box::new(move |rel| store.table(rel))
    }

    /// The generation spec for a relation, if known.
    pub fn spec(&self, rel: RelId) -> Option<TableGenSpec> {
        self.inner.specs.get(&rel).cloned()
    }
}

/// Deterministic table generation from `(workload seed, relation id)`.
pub fn generate_table(rel: RelId, spec: &TableGenSpec, seed: u64) -> Table {
    let mut rng = seeded_rng(seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(rel.0 as u64 + 1)));
    // Join keys are Zipfian (§7) but with a softened exponent: the full
    // exponent would put >10 % of rows on the single hottest key, and the
    // resulting quadratic hot-key join blowup swamps the network costs the
    // paper's evaluation is about.
    let key_zipf = Zipf::new(spec.key_domain.max(1) as usize, (spec.skew * 0.55).min(0.7));
    let score_zipf = Zipf::new(1_000, spec.skew);
    let mut rows = Vec::with_capacity(spec.rows as usize);
    for i in 0..spec.rows {
        let k1 = (key_zipf.sample(&mut rng) - 1) as i64;
        let k2 = (key_zipf.sample(&mut rng) - 1) as i64;
        // Term column: embedded keyword terms with their selectivities,
        // otherwise filler.
        let mut term: Option<&str> = None;
        for (t, sel) in &spec.terms {
            if rng.random::<f64>() < *sel {
                term = Some(t);
                break;
            }
        }
        let term_value = match term {
            Some(t) => Value::str(t),
            None => Value::str(format!("filler{}", rng.random_range(0..997))),
        };
        // Zipfian similarity score in (0, 1]: rank 1 → 1.0, heavy tail.
        let raw_score = if spec.scored {
            match spec.score_kind {
                ScoreKind::ZipfSimilarity => {
                    // Continuous jitter breaks the mass of exact ties the
                    // discrete Zipf would otherwise put at 1.0 — IR
                    // similarity scores are real-valued, and top-k
                    // thresholds need the bound to actually descend.
                    let z = score_zipf.sample(&mut rng) as f64;
                    let jitter = 0.85 + 0.15 * rng.random::<f64>();
                    (1.0 / z).powf(0.35) * jitter
                }
                ScoreKind::PublicationYear => {
                    // Years 1980–2010 normalized: newer ranks higher.
                    let year = rng.random_range(1980..=2010) as f64;
                    (year - 1970.0) / 40.0
                }
            }
        } else {
            1.0
        };
        rows.push(Arc::new(BaseTuple::new(
            rel,
            i,
            vec![
                Value::Int(k1),
                Value::Int(k2),
                term_value,
                Value::float(raw_score),
            ],
            raw_score,
        )));
    }
    Table::new(rel, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> SharedTables {
        let mut specs = HashMap::new();
        specs.insert(
            RelId::new(0),
            TableGenSpec {
                rows: 500,
                terms: vec![("protein".into(), 0.05)],
                ..TableGenSpec::default()
            },
        );
        specs.insert(
            RelId::new(1),
            TableGenSpec {
                rows: 300,
                scored: false,
                ..TableGenSpec::default()
            },
        );
        SharedTables::new(42, specs)
    }

    #[test]
    fn generation_is_lazy_and_cached() {
        let s = store();
        assert_eq!(s.materialized(), 0);
        let t1 = s.table(RelId::new(0));
        assert_eq!(s.materialized(), 1);
        let t2 = s.table(RelId::new(0));
        assert!(Arc::ptr_eq(&t1, &t2));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = store().table(RelId::new(0));
        let b = store().table(RelId::new(0));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.rows().iter().zip(b.rows().iter()) {
            assert_eq!(x.row_id, y.row_id);
            assert_eq!(x.values, y.values);
        }
    }

    #[test]
    fn scored_tables_sorted_scoreless_flat() {
        let s = store();
        let scored = s.table(RelId::new(0));
        assert!(scored.rows()[0].raw_score >= scored.rows()[10].raw_score);
        assert!(scored.max_score() <= 1.0);
        let flat = s.table(RelId::new(1));
        assert!(flat.rows().iter().all(|r| r.raw_score == 1.0));
    }

    #[test]
    fn embedded_terms_hit_target_selectivity() {
        let s = store();
        let t = s.table(RelId::new(0));
        let hits = t
            .rows()
            .iter()
            .filter(|r| r.values[2].as_str() == Some("protein"))
            .count();
        // 5% of 500 = 25 expected; accept a generous band.
        assert!((5..=60).contains(&hits), "got {hits}");
    }

    #[test]
    fn clones_share_the_cache() {
        let s = store();
        let s2 = s.clone();
        let _ = s.table(RelId::new(0));
        assert_eq!(s2.materialized(), 1);
    }
}

//! The Pfam/InterPro workload (Section 7.5, "Real-data workload").
//!
//! The paper integrated Pfam (protein families, with relationship tables to
//! sequences) and InterPro (families + sequence information), bridged by a
//! mapping table, matched keywords with MySQL full-text similarity, and
//! added the publication year as an extra score attribute.
//!
//! We cannot ship those database dumps, so this module builds the faithful
//! miniature described in DESIGN.md: the same relation topology (including
//! the Pfam↔InterPro mapping table), synthetic text-similarity scores, a
//! publication-year-scored literature table, and **substantially larger
//! cardinalities** than the GUS workload — the property that drives
//! Section 7.5's finding that ATC-FULL gains little (contention on bigger
//! data) while clustering wins big.

use crate::tables::{ScoreKind, SharedTables, TableGenSpec};
use crate::{Workload, WorkloadQuery};
use qsys_catalog::{
    CatalogBuilder, ColumnStats, EdgeKind, KeywordIndex, KeywordMatch, MatchKind, RelationStats,
};
use qsys_types::dist::{seeded_rng, Zipf};
use qsys_types::{RelId, SourceId, UserId, Value};
use rand::Rng;
use std::collections::HashMap;

/// Protein-family search terms (matched against family / sequence /
/// publication text).
pub const PFAM_TERMS: &[&str] = &[
    "kinase",
    "domain",
    "binding",
    "transferase",
    "receptor",
    "zinc finger",
    "helicase",
    "protease",
    "immunoglobulin",
    "transcription factor",
    "membrane",
    "signal peptide",
    "phosphatase",
    "dehydrogenase",
    "ribosomal",
    "polymerase",
];

/// Generator parameters.
#[derive(Clone, Debug)]
pub struct PfamConfig {
    /// RNG seed.
    pub seed: u64,
    /// Cardinality scale factor: 1.0 ≈ tens of thousands of rows in the
    /// large tables (the workload must be *bigger* than GUS's default).
    pub scale: f64,
    /// Number of user queries (paper: 15).
    pub user_queries: usize,
    /// Maximum inter-arrival gap (paper: 6 s, posed in sequence).
    pub arrival_spread_us: u64,
}

impl PfamConfig {
    /// Laptop-scale default.
    pub fn small(seed: u64) -> PfamConfig {
        PfamConfig {
            seed,
            scale: 0.2,
            user_queries: 15,
            arrival_spread_us: 6_000_000,
        }
    }

    /// Paper-comparable scale.
    pub fn paper(seed: u64) -> PfamConfig {
        PfamConfig {
            scale: 1.0,
            ..PfamConfig::small(seed)
        }
    }
}

/// Generate the Pfam/InterPro-style workload.
pub fn generate(config: &PfamConfig) -> Workload {
    let mut rng = seeded_rng(config.seed);
    let s = config.scale;
    let rows = |base: f64| -> u64 { ((base * s) as u64).max(500) };

    let pfam_db = SourceId::new(0);
    let interpro_db = SourceId::new(1);

    let mut b = CatalogBuilder::default();
    let mut specs: HashMap<RelId, TableGenSpec> = HashMap::new();
    let mk = |b: &mut CatalogBuilder,
              specs: &mut HashMap<RelId, TableGenSpec>,
              name: &str,
              db: SourceId,
              n: u64,
              scored: bool,
              score_kind: ScoreKind,
              key_domain: u64,
              node_cost: f64| {
        let mut stats = RelationStats::with_cardinality(n);
        stats.columns = vec![
            ColumnStats {
                distinct: key_domain,
            },
            ColumnStats {
                distinct: key_domain,
            },
            ColumnStats { distinct: 997 },
        ];
        let rel = b.relation(
            name,
            db,
            vec!["k1".into(), "k2".into(), "text".into(), "score".into()],
            scored.then_some(3),
            node_cost,
            stats,
        );
        specs.insert(
            rel,
            TableGenSpec {
                rows: n,
                key_domain,
                scored,
                score_kind,
                terms: Vec::new(),
                skew: 1.0,
            },
        );
        rel
    };

    // Pfam side.
    let pfam_a = mk(
        &mut b,
        &mut specs,
        "pfamA",
        pfam_db,
        rows(18_000.0),
        true,
        ScoreKind::ZipfSimilarity,
        rows(18_000.0) / 2,
        0.4,
    );
    let pfamseq = mk(
        &mut b,
        &mut specs,
        "pfamseq",
        pfam_db,
        rows(120_000.0),
        true,
        ScoreKind::ZipfSimilarity,
        rows(120_000.0) / 6,
        0.5,
    );
    let pfam_reg = mk(
        &mut b,
        &mut specs,
        "pfamA_reg_full",
        pfam_db,
        rows(150_000.0),
        false,
        ScoreKind::ZipfSimilarity,
        rows(18_000.0) / 2,
        1.0,
    );
    let literature = mk(
        &mut b,
        &mut specs,
        "literature_ref",
        pfam_db,
        rows(30_000.0),
        true,
        ScoreKind::PublicationYear,
        rows(18_000.0) / 2,
        0.8,
    );
    // InterPro side.
    let entry = mk(
        &mut b,
        &mut specs,
        "interpro_entry",
        interpro_db,
        rows(25_000.0),
        true,
        ScoreKind::ZipfSimilarity,
        rows(25_000.0) / 2,
        0.4,
    );
    let entry2go = mk(
        &mut b,
        &mut specs,
        "interpro2go",
        interpro_db,
        rows(40_000.0),
        false,
        ScoreKind::ZipfSimilarity,
        rows(25_000.0) / 2,
        1.0,
    );
    let go_term = mk(
        &mut b,
        &mut specs,
        "go_term",
        interpro_db,
        rows(20_000.0),
        true,
        ScoreKind::ZipfSimilarity,
        rows(20_000.0) / 2,
        0.6,
    );
    let entry_pub = mk(
        &mut b,
        &mut specs,
        "entry_pub",
        interpro_db,
        rows(35_000.0),
        false,
        ScoreKind::ZipfSimilarity,
        rows(25_000.0) / 2,
        1.0,
    );
    // The cross-database mapping table ("the former database contains a
    // mapping table that relates Pfam families to Interpro entries").
    let pfam2interpro = mk(
        &mut b,
        &mut specs,
        "pfam2interpro",
        pfam_db,
        rows(20_000.0),
        true,
        ScoreKind::ZipfSimilarity,
        rows(18_000.0) / 2,
        0.7,
    );

    b.edge(pfam_a, 0, pfam_reg, 0, EdgeKind::ForeignKey, 0.8, 8.0);
    b.edge(pfam_reg, 1, pfamseq, 0, EdgeKind::ForeignKey, 0.8, 1.0);
    b.edge(pfam_a, 0, literature, 0, EdgeKind::ForeignKey, 1.0, 2.0);
    b.edge(pfam_a, 0, pfam2interpro, 0, EdgeKind::RecordLink, 0.6, 1.2);
    b.edge(pfam2interpro, 1, entry, 0, EdgeKind::RecordLink, 0.6, 1.0);
    b.edge(entry, 0, entry2go, 0, EdgeKind::ForeignKey, 0.9, 1.5);
    b.edge(entry2go, 1, go_term, 0, EdgeKind::ForeignKey, 0.9, 1.0);
    b.edge(entry, 0, entry_pub, 0, EdgeKind::ForeignKey, 1.0, 1.4);
    b.edge(entry_pub, 1, literature, 0, EdgeKind::Link, 1.2, 1.0);
    let catalog = b.build();

    // Keyword index: full-text content matches on the text-bearing tables
    // (pfamA descriptions, sequence annotations, InterPro entries, GO
    // terms, publication titles).
    let mut index = KeywordIndex::new();
    let text_rels = [pfam_a, pfamseq, entry, go_term, literature];
    for term in PFAM_TERMS {
        let matches = rng.random_range(2..=3);
        let mut chosen: Vec<RelId> = Vec::new();
        while chosen.len() < matches {
            let rel = text_rels[rng.random_range(0..text_rels.len())];
            if chosen.contains(&rel) {
                continue;
            }
            chosen.push(rel);
            let selectivity = 0.004 + rng.random::<f64>() * 0.02;
            specs
                .get_mut(&rel)
                .expect("spec")
                .terms
                .push((term.to_string(), selectivity));
            index.insert(
                term,
                KeywordMatch {
                    rel,
                    similarity: 0.5 + rng.random::<f64>() * 0.5,
                    kind: MatchKind::Content {
                        column: 2,
                        value: Value::str(*term),
                    },
                    selectivity,
                },
            );
        }
    }

    // 15 two-keyword queries, posed in sequence with random delays ≤ 6 s.
    let term_zipf = Zipf::new(PFAM_TERMS.len(), 1.0);
    let mut queries = Vec::new();
    let mut arrival = 0u64;
    for uq in 0..config.user_queries {
        let a = PFAM_TERMS[term_zipf.sample(&mut rng) - 1];
        let mut b2 = a;
        while b2 == a {
            b2 = PFAM_TERMS[term_zipf.sample(&mut rng) - 1];
        }
        let quote = |t: &str| {
            if t.contains(' ') {
                format!("'{t}'")
            } else {
                t.to_string()
            }
        };
        arrival += rng.random_range(0..=config.arrival_spread_us);
        queries.push(WorkloadQuery {
            keywords: format!("{} {}", quote(a), quote(b2)),
            user: UserId::new(uq as u32),
            edge_costs: None,
            arrival_us: arrival,
        });
    }

    Workload {
        catalog,
        index,
        tables: SharedTables::new(config.seed, specs),
        queries,
        name: "pfam",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_matches_pfam_interpro_topology() {
        let w = generate(&PfamConfig::small(1));
        assert_eq!(w.catalog.relation_count(), 9);
        let pfam_a = w.catalog.relation_by_name("pfamA").unwrap();
        let entry = w.catalog.relation_by_name("interpro_entry").unwrap();
        let mapping = w.catalog.relation_by_name("pfam2interpro").unwrap();
        // The mapping table bridges the two databases.
        assert!(w.catalog.edge_between(pfam_a.id, mapping.id).is_some());
        assert!(w.catalog.edge_between(mapping.id, entry.id).is_some());
        assert_ne!(pfam_a.source_db, entry.source_db);
    }

    #[test]
    fn larger_than_gus_default() {
        let w = generate(&PfamConfig::small(1));
        let pfamseq = w.catalog.relation_by_name("pfamseq").unwrap();
        assert!(pfamseq.stats.cardinality >= 20_000, "big sequence table");
    }

    #[test]
    fn publication_year_scores_are_normalized() {
        let w = generate(&PfamConfig::small(2));
        let lit = w.catalog.relation_by_name("literature_ref").unwrap().id;
        let t = w.tables.table(lit);
        for r in t.rows().iter().take(100) {
            assert!(r.raw_score > 0.2 && r.raw_score <= 1.0);
        }
    }

    #[test]
    fn all_query_terms_match() {
        let w = generate(&PfamConfig::small(3));
        assert_eq!(w.queries.len(), 15);
        for q in &w.queries {
            for term in KeywordIndex::tokenize(&q.keywords) {
                assert!(!w.index.lookup(&term).is_empty(), "'{term}'");
            }
        }
    }

    #[test]
    fn link_tables_are_scoreless() {
        let w = generate(&PfamConfig::small(4));
        for name in ["pfamA_reg_full", "interpro2go", "entry_pub"] {
            assert!(
                !w.catalog.relation_by_name(name).unwrap().has_score(),
                "{name} is a probe-only link table"
            );
        }
    }
}

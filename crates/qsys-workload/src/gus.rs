//! The synthetic GUS workload (Section 7, "Synthetic workload").
//!
//! "Our synthetic dataset made use of the Genomics Unified Schema (GUS),
//! which has 358 relations. We created 4 simulated database instances by
//! populating the relations in schema with 20,000–100,000 randomly
//! generated tuples apiece. ... Scores, join keys, and coefficients on the
//! score functions for the various user queries were drawn from a Zipfian
//! distribution. ... We generated a suite of 15 user queries by choosing
//! pairs of keywords from a list of common biological terms, using a Zipf
//! distribution on the keywords."
//!
//! The schema generator reproduces GUS's *shape*: 358 relations spread
//! over a handful of databases, hub relations for core concepts (preferred
//! attachment), record-linking bridge tables without score attributes, and
//! synonym/relationship tables carrying similarity scores.

use crate::tables::{SharedTables, TableGenSpec};
use crate::{Workload, WorkloadQuery};
use qsys_catalog::{
    CatalogBuilder, ColumnStats, EdgeKind, KeywordIndex, KeywordMatch, MatchKind, RelationStats,
};
use qsys_types::dist::{seeded_rng, Zipf};
use qsys_types::{RelId, SourceId, UserId, Value};
use rand::Rng;
use std::collections::HashMap;

/// Vocabulary of "common biological terms" (Section 7).
pub const BIO_TERMS: &[&str] = &[
    "protein",
    "gene",
    "plasma membrane",
    "metabolism",
    "kinase",
    "receptor",
    "transcription",
    "binding",
    "transport",
    "signal",
    "enzyme",
    "pathway",
    "nucleus",
    "mitochondrion",
    "ribosome",
    "cytoplasm",
    "homolog",
    "mutation",
    "expression",
    "regulation",
    "domain",
    "motif",
    "sequence",
    "structure",
    "antibody",
    "ligand",
    "catalysis",
    "phosphorylation",
    "transferase",
    "hydrolase",
    "oxidoreductase",
    "membrane",
    "chromosome",
    "plasmid",
    "promoter",
    "repressor",
    "operon",
    "ortholog",
    "paralog",
    "synthase",
];

const NAME_PREFIXES: &[&str] = &[
    "Gene",
    "Protein",
    "Transcript",
    "Sequence",
    "GO",
    "Entry",
    "Term",
    "Family",
    "Motif",
    "Domain",
    "Taxon",
    "Assay",
    "Clone",
    "Library",
    "Spot",
    "Array",
    "Feature",
    "Interaction",
];
const NAME_SUFFIXES: &[&str] = &[
    "Info",
    "Feature",
    "Synonym",
    "Category",
    "Instance",
    "Attribute",
    "Relationship",
    "Evidence",
    "Annotation",
    "Ref",
    "Map",
    "Link",
];

/// Generator parameters.
#[derive(Clone, Debug)]
pub struct GusConfig {
    /// RNG seed (the paper used 4 instances; vary the seed).
    pub seed: u64,
    /// Number of relations (GUS has 358).
    pub relations: usize,
    /// Rows per relation drawn uniformly from this range.
    pub min_rows: u64,
    /// Upper end of the rows range.
    pub max_rows: u64,
    /// Number of user queries in the script (paper: 15).
    pub user_queries: usize,
    /// Zipf exponent for keys, scores, and keyword choice.
    pub skew: f64,
    /// Maximum inter-arrival gap (paper: 6 s).
    pub arrival_spread_us: u64,
    /// Error spread on the *catalog's* reported cardinalities and
    /// column-distinct counts, leaving the generated data untouched: at
    /// 1.0 (the default) the priors are truthful; at `e != 1.0` each
    /// relation's reported numbers are deterministically multiplied by
    /// `e` or `1/e` (hash of the relation index), so the catalog's
    /// *relative* ordering of cardinalities is wrong — the drift-heavy
    /// regime the adaptive re-optimization bench exercises. Uniformly
    /// scaling every relation would leave most cost comparisons, and
    /// therefore most plans, unchanged; the spread is what makes stale
    /// priors pick genuinely bad plans.
    pub stats_error: f64,
}

impl GusConfig {
    /// Laptop-scale default: full schema, reduced rows. Preserves every
    /// structural property; only the absolute stream depths shrink.
    pub fn small(seed: u64) -> GusConfig {
        GusConfig {
            seed,
            relations: 358,
            min_rows: 1_000,
            max_rows: 5_000,
            user_queries: 15,
            skew: 1.0,
            arrival_spread_us: 6_000_000,
            stats_error: 1.0,
        }
    }

    /// The paper's scale: 20k–100k rows per relation.
    pub fn paper(seed: u64) -> GusConfig {
        GusConfig {
            min_rows: 20_000,
            max_rows: 100_000,
            ..GusConfig::small(seed)
        }
    }
}

/// Generate the synthetic workload.
pub fn generate(config: &GusConfig) -> Workload {
    let mut rng = seeded_rng(config.seed);
    let n = config.relations;

    // --- Schema graph -----------------------------------------------------
    let mut builder = CatalogBuilder::default();
    let mut specs: HashMap<RelId, TableGenSpec> = HashMap::new();
    let attach_zipf = Zipf::new(n.max(2) - 1, 0.8); // hub bias
    let mut rel_ids = Vec::with_capacity(n);
    for i in 0..n {
        let rows = rng.random_range(config.min_rows..=config.max_rows);
        // Roughly a third of GUS tables are link/bridge tables without
        // score attributes (probe-only under heuristic 2).
        let scored = rng.random::<f64>() > 0.35;
        let name = format!(
            "{}{}{}",
            NAME_PREFIXES[i % NAME_PREFIXES.len()],
            NAME_SUFFIXES[(i / NAME_PREFIXES.len()) % NAME_SUFFIXES.len()],
            i
        );
        let key_domain = (rows / rng.random_range(1u64..3)).max(16);
        // The catalog reports `stats_error^±1 ×` the truth (sign from a
        // hash of the relation index, off the workload's RNG stream so
        // the generated data and script stay untouched); the data keeps
        // the true shape. Guard the exact-1.0 case so truthful runs stay
        // byte-identical to pre-knob builds.
        let reported = |v: u64| {
            if config.stats_error == 1.0 {
                return v;
            }
            let factor = if (i as u64).wrapping_mul(0x9E3779B97F4A7C15) & (1 << 62) == 0 {
                config.stats_error
            } else {
                1.0 / config.stats_error
            };
            ((v as f64 * factor).round() as u64).max(1)
        };
        let mut stats = RelationStats::with_cardinality(reported(rows));
        stats.columns = vec![
            ColumnStats {
                distinct: reported(key_domain),
            },
            ColumnStats {
                distinct: reported(key_domain),
            },
            ColumnStats { distinct: 997 },
        ];
        stats.max_score = 1.0;
        let source_db = SourceId::new(rng.random_range(0..6)); // a handful of DBs
        let node_cost = 0.2 + rng.random::<f64>() * 1.3;
        let rel = builder.relation(
            name,
            source_db,
            vec!["k1".into(), "k2".into(), "term".into(), "score".into()],
            scored.then_some(3),
            node_cost,
            stats,
        );
        specs.insert(
            rel,
            TableGenSpec {
                rows,
                key_domain,
                scored,
                terms: Vec::new(),
                skew: config.skew,
                ..TableGenSpec::default()
            },
        );
        rel_ids.push(rel);
        // Spanning-tree edge to an earlier relation (hub-biased), plus
        // occasional extra edges for density.
        if i > 0 {
            let parent = rel_ids[attach_zipf.sample(&mut rng).min(i) - 1];
            let (fc, tc) = (rng.random_range(0..2), rng.random_range(0..2));
            let kind = if rng.random::<f64>() < 0.3 {
                EdgeKind::RecordLink
            } else {
                EdgeKind::ForeignKey
            };
            let cost = 0.5 + rng.random::<f64>() * 1.5;
            let fanout = 1.0 + rng.random::<f64>() * 3.0;
            builder.edge(parent, fc, rel, tc, kind, cost, fanout);
            if i > 2 && rng.random::<f64>() < 0.4 {
                let other = rel_ids[rng.random_range(0..i - 1)];
                if other != parent {
                    builder.edge(
                        other,
                        rng.random_range(0..2),
                        rel,
                        rng.random_range(0..2),
                        EdgeKind::Link,
                        0.5 + rng.random::<f64>() * 1.5,
                        1.0 + rng.random::<f64>() * 3.0,
                    );
                }
            }
        }
    }
    let catalog = builder.build();

    // --- Keyword index ----------------------------------------------------
    // Each term matches 2–4 relations, hub-biased; content matches on
    // scored relations get the term embedded in their data.
    let mut index = KeywordIndex::new();
    let rel_zipf = Zipf::new(n, 0.8);
    for term in BIO_TERMS {
        let matches = rng.random_range(2..=4);
        let mut chosen = Vec::new();
        while chosen.len() < matches {
            let rel = rel_ids[rel_zipf.sample(&mut rng) - 1];
            if chosen.contains(&rel) {
                continue;
            }
            chosen.push(rel);
            let scored = catalog.relation(rel).has_score();
            let similarity = 0.4 + rng.random::<f64>() * 0.6;
            if scored {
                let selectivity = 0.005 + rng.random::<f64>() * 0.03;
                specs
                    .get_mut(&rel)
                    .expect("spec exists")
                    .terms
                    .push((term.to_string(), selectivity));
                index.insert(
                    term,
                    KeywordMatch {
                        rel,
                        similarity,
                        kind: MatchKind::Content {
                            column: 2,
                            value: Value::str(*term),
                        },
                        selectivity,
                    },
                );
            } else {
                index.insert(
                    term,
                    KeywordMatch {
                        rel,
                        similarity: similarity * 0.7,
                        kind: MatchKind::Metadata,
                        selectivity: 1.0,
                    },
                );
            }
        }
    }

    // --- Query script -----------------------------------------------------
    let term_zipf = Zipf::new(BIO_TERMS.len(), config.skew);
    let mut queries = Vec::new();
    let mut arrival = 0u64;
    for uq in 0..config.user_queries {
        let a = BIO_TERMS[term_zipf.sample(&mut rng) - 1];
        let mut b = a;
        while b == a {
            b = BIO_TERMS[term_zipf.sample(&mut rng) - 1];
        }
        let quote = |t: &str| {
            if t.contains(' ') {
                format!("'{t}'")
            } else {
                t.to_string()
            }
        };
        // Per-user Zipfian coefficients on the score functions: learned
        // edge-cost overrides for a random subset of schema edges.
        let cost_zipf = Zipf::new(16, config.skew);
        let mut edge_costs = HashMap::new();
        for e in catalog.edges() {
            if rng.random::<f64>() < 0.1 {
                edge_costs.insert(e.id, cost_zipf.sample(&mut rng) as f64 * 0.25);
            }
        }
        arrival += rng.random_range(0..=config.arrival_spread_us);
        queries.push(WorkloadQuery {
            keywords: format!("{} {}", quote(a), quote(b)),
            user: UserId::new(uq as u32),
            edge_costs: Some(edge_costs),
            arrival_us: arrival,
        });
    }

    Workload {
        catalog,
        index,
        tables: SharedTables::new(config.seed, specs),
        queries,
        name: "gus",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_has_paper_shape() {
        let w = generate(&GusConfig::small(1));
        assert_eq!(w.catalog.relation_count(), 358);
        assert!(w.catalog.edges().len() >= 357, "connected schema");
        // A healthy mix of scored and probe-only relations.
        let scored = w
            .catalog
            .relations()
            .iter()
            .filter(|r| r.has_score())
            .count();
        assert!(scored > 150 && scored < 320, "scored = {scored}");
        assert_eq!(w.queries.len(), 15);
    }

    #[test]
    fn keywords_resolve_to_matches() {
        let w = generate(&GusConfig::small(2));
        for q in &w.queries {
            for term in KeywordIndex::tokenize(&q.keywords) {
                assert!(
                    !w.index.lookup(&term).is_empty(),
                    "term '{term}' must match"
                );
            }
        }
    }

    #[test]
    fn content_matches_exist_in_data() {
        let w = generate(&GusConfig::small(3));
        // Find one content match and verify the generated table contains
        // rows satisfying its selection.
        let mut checked = 0;
        for term in BIO_TERMS.iter().take(8) {
            for m in w.index.lookup(term) {
                if let MatchKind::Content { column, value } = &m.kind {
                    let table = w.tables.table(m.rel);
                    let hits = table
                        .rows()
                        .iter()
                        .filter(|r| r.values[*column] == *value)
                        .count();
                    assert!(hits > 0, "term '{term}' embedded in {}", m.rel);
                    checked += 1;
                }
            }
        }
        assert!(checked > 0, "at least one content match verified");
    }

    #[test]
    fn different_seeds_differ_same_seed_repeats() {
        let a = generate(&GusConfig::small(10));
        let b = generate(&GusConfig::small(10));
        let c = generate(&GusConfig::small(11));
        assert_eq!(a.queries[0].keywords, b.queries[0].keywords);
        let same = a
            .queries
            .iter()
            .zip(c.queries.iter())
            .all(|(x, y)| x.keywords == y.keywords);
        assert!(!same, "different seeds should differ somewhere");
    }

    #[test]
    fn stats_error_skews_catalog_only() {
        let truthful = generate(&GusConfig::small(5));
        let skewed = generate(&GusConfig {
            stats_error: 0.25,
            ..GusConfig::small(5)
        });
        // Same data, same script — only the priors lie.
        assert_eq!(truthful.queries.len(), skewed.queries.len());
        for (a, b) in truthful.queries.iter().zip(&skewed.queries) {
            assert_eq!(a.keywords, b.keywords);
        }
        let (mut smaller, mut larger) = (0, 0);
        for (t, s) in truthful
            .catalog
            .relations()
            .iter()
            .zip(skewed.catalog.relations())
        {
            if s.stats.cardinality < t.stats.cardinality {
                smaller += 1;
            }
            if s.stats.cardinality > t.stats.cardinality {
                larger += 1;
            }
            assert_eq!(
                truthful.tables.table(t.id).rows().len(),
                skewed.tables.table(s.id).rows().len(),
                "generated data must not change"
            );
        }
        // The spread lies in both directions, so the catalog's relative
        // cardinality ordering — not just its scale — is wrong.
        assert!(smaller > 50, "some priors shrank ({smaller})");
        assert!(larger > 50, "some priors grew ({larger})");
    }

    #[test]
    fn arrivals_are_monotone_with_bounded_gaps() {
        let w = generate(&GusConfig::small(4));
        let mut last = 0;
        for q in &w.queries {
            assert!(q.arrival_us >= last);
            assert!(q.arrival_us - last <= 6_000_000);
            last = q.arrival_us;
        }
    }
}

//! Crash-safe persistence of a lane's warm state.
//!
//! The `SigInterner` arena (with its child DAG and generation stamp) and
//! the optimizer's `WarmStore` (cost inputs, candidate enumerations,
//! canonical rank, batch-shape plan memo) are the system's accumulated
//! knowledge; without persistence a process restart throws them away and
//! the first batch after every deploy pays the full cold-optimize penalty.
//! This crate serializes that state to a single snapshot file and
//! rehydrates it on engine construction — crash-safely in both directions:
//!
//! - **Writes are atomic.** The image is built in memory, written to
//!   `qsys.snapshot.tmp`, fsynced, and renamed over `qsys.snapshot` (the
//!   directory is fsynced best-effort afterwards). A crash at any point
//!   leaves either the old snapshot or the new one, never a half-written
//!   file under the published name.
//! - **Loads trust nothing.** The file is self-describing — a magic tag, a
//!   format version, the engine-config fingerprint, and a catalog
//!   fingerprint in a checksummed header — and every section carries its
//!   own length and CRC-32. Any mismatch (version, fingerprint, checksum,
//!   truncation, or a decoded structure that fails the interner's or warm
//!   store's own validation) rejects the affected state, quarantines the
//!   file aside (`qsys.snapshot.corrupt-N`), and falls back to a cold
//!   start. Corruption can cost warmth; it can never panic the engine or
//!   change a decision.
//!
//! Rejection reasons and salvage counts are reported in
//! [`SnapshotSummary`], which the engine surfaces through its `RunReport`.
//!
//! Deterministic snapshot-I/O faults (torn write, short read, bit flip,
//! rename failure, write-time crash) come from
//! [`qsys_source::SnapFaults`] (`QSYS_FAULTS` `snap:` clauses) so recovery
//! scenarios replay byte-identically in tests and chaos runs.

pub mod wire;

use qsys_catalog::Catalog;
use qsys_opt::{ObservedCard, ObservedStats, OptStats, WarmExport, WarmFact, WarmPlan, WarmStore};
use qsys_query::{SigId, SigInterner, SubExprSig};
use qsys_source::SnapFaults;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use wire::{crc32, fnv1a64, Dec, Enc};

/// Published snapshot file name inside `EngineConfig::snapshot_dir`.
pub const SNAPSHOT_FILE: &str = "qsys.snapshot";
/// Scratch name for the atomic tmp-write + rename publication.
pub const SNAPSHOT_TMP: &str = "qsys.snapshot.tmp";
/// Magic tag opening every snapshot file.
pub const MAGIC: &[u8; 8] = b"QSYSSNAP";
/// Current format version. Version 2 added the observed-cardinality
/// section ([`SEC_OBSERVED`]); files back to [`MIN_FORMAT_VERSION`] still
/// load (a v1 file simply rehydrates with no observations). Newer or
/// pre-v1 files are rejected whole.
pub const FORMAT_VERSION: u32 = 2;
/// Oldest format version this loader still accepts.
pub const MIN_FORMAT_VERSION: u32 = 1;

const SEC_HEADER: u8 = 0x01;
const SEC_INTERNER: u8 = 0x10;
const SEC_FACTS: u8 = 0x11;
const SEC_EXPENSIVE: u8 = 0x12;
const SEC_CANDIDATES: u8 = 0x13;
const SEC_RANK: u8 = 0x14;
const SEC_PLANS: u8 = 0x15;
const SEC_OBSERVED: u8 = 0x16;
const SEC_LANE_END: u8 = 0x1F;

/// Sanity bound on the header's lane count (a corrupt count must not
/// drive allocation). Public so `qsys-verify` audits images against the
/// same ceiling the loader enforces.
pub const MAX_LANES: u32 = 65_536;

/// What snapshot recovery did, for the `RunReport`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SnapshotSummary {
    /// A snapshot directory was configured and a published file existed.
    pub attempted: bool,
    /// At least one lane rehydrated from the snapshot.
    pub loaded: bool,
    /// Lanes that rehydrated (interner, at minimum).
    pub lanes_loaded: usize,
    /// Checksummed sections admitted into live state.
    pub sections_salvaged: usize,
    /// Sections dropped: checksum or framing failures, or decoded state
    /// that failed the interner's / warm store's own validation.
    pub sections_rejected: usize,
    /// First rejection reason, when anything was rejected.
    pub reason: Option<String>,
    /// Where the damaged/mismatched file was quarantined, if it was.
    pub quarantined: Option<String>,
    /// Size of the snapshot file read, in bytes.
    pub bytes: u64,
    /// Host time spent loading, µs.
    pub load_us: u64,
    /// Snapshots published by this engine so far.
    pub writes: usize,
    /// Errors from snapshot publications (e.g. an injected rename
    /// failure); the engine keeps running — persistence is best-effort.
    pub write_errors: Vec<String>,
}

/// Serializable image of one lane's warm state.
#[derive(Clone, Debug, Default)]
pub struct LaneImage {
    /// The interner arena in id order: canonical signature + child pair.
    pub interner: Vec<(SubExprSig, Option<(SigId, SigId)>)>,
    /// The warm store's exportable state.
    pub warm: WarmExport,
    /// Observed per-leaf cardinalities learned by the adaptive loop
    /// (empty unless adaptive execution ran); id-sorted.
    pub observed: Vec<(SigId, ObservedCard)>,
}

/// Serializable image of a whole engine's warm state.
#[derive(Clone, Debug, Default)]
pub struct SnapshotImage {
    /// `OptimizerConfig::warm_fingerprint()` of the engine that recorded
    /// the state; a load under a different configuration is rejected.
    pub engine_fingerprint: String,
    /// [`catalog_fingerprint`] of the catalog the ids refer to.
    pub catalog_fingerprint: u64,
    /// Per-lane state, in lane-index order.
    pub lanes: Vec<LaneImage>,
}

/// One rehydrated lane, validated and ready to install.
#[derive(Debug)]
pub struct LoadedLane {
    /// Rebuilt interner (ids identical to the recording engine's).
    pub interner: SigInterner,
    /// Rebuilt warm store, validated against that interner.
    pub warm: WarmStore,
    /// Rehydrated observed cardinalities, validated against that
    /// interner (empty for v1 snapshots or when nothing was observed).
    pub observed: ObservedStats,
}

/// Stable fingerprint of a catalog: FNV-1a over the debug rendering of its
/// relations and edges. Two engines agree on the fingerprint exactly when
/// they were built over the same schema graph and statistics — which is
/// the precondition for a snapshot's `RelId`s and cost inputs to be
/// meaningful. (FNV by hand because `DefaultHasher` is documented as
/// unstable across Rust releases, and a snapshot outlives the build that
/// wrote it.)
pub fn catalog_fingerprint(catalog: &Catalog) -> u64 {
    let rendering = format!("{:?}|{:?}", catalog.relations(), catalog.edges());
    fnv1a64(rendering.as_bytes())
}

fn push_section(out: &mut Vec<u8>, id: u8, body: &[u8]) {
    out.push(id);
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(body).to_le_bytes());
    out.extend_from_slice(body);
}

fn encode_interner(lane: &LaneImage) -> Vec<u8> {
    let mut e = Enc::new();
    e.u32(lane.interner.len() as u32);
    for (sig, children) in &lane.interner {
        e.sub_expr_sig(sig);
        match children {
            None => e.u8(0),
            Some((a, b)) => {
                e.u8(1);
                e.sig_id(*a);
                e.sig_id(*b);
            }
        }
    }
    e.into_bytes()
}

fn encode_facts(warm: &WarmExport) -> Vec<u8> {
    let mut e = Enc::new();
    match &warm.fingerprint {
        None => e.u8(0),
        Some(fp) => {
            e.u8(1);
            e.str(fp);
        }
    }
    e.u32(warm.facts.len() as u32);
    for (id, fact) in &warm.facts {
        e.sig_id(*id);
        e.f64(fact.card);
        e.u8(fact.streamed as u8);
        e.u32(fact.size);
    }
    e.into_bytes()
}

fn encode_expensive(warm: &WarmExport) -> Vec<u8> {
    let mut e = Enc::new();
    e.u32(warm.expensive.len() as u32);
    for (id, verdict) in &warm.expensive {
        e.sig_id(*id);
        e.u8(*verdict as u8);
    }
    e.into_bytes()
}

fn encode_candidates(warm: &WarmExport) -> Vec<u8> {
    let mut e = Enc::new();
    e.u32(warm.cq_candidates.len() as u32);
    for (whole, sigs) in &warm.cq_candidates {
        e.sig_id(*whole);
        e.sig_ids(sigs);
    }
    e.into_bytes()
}

fn encode_rank(warm: &WarmExport) -> Vec<u8> {
    let mut e = Enc::new();
    e.sig_ids(&warm.canon_order);
    e.into_bytes()
}

fn encode_plans(warm: &WarmExport) -> Vec<u8> {
    let mut e = Enc::new();
    e.u32(warm.plans.len() as u32);
    for (shape, plan) in &warm.plans {
        e.sig_ids(shape);
        e.sig_ids(&plan.cand_sigs);
        e.u32(plan.assignment.len() as u32);
        for (sig, cqs) in plan.assignment.iter() {
            e.sig_id(*sig);
            e.cq_set(cqs);
        }
        e.u64(plan.stats.candidates as u64);
        e.u64(plan.stats.explored as u64);
        e.u64(plan.stats.memo_hits as u64);
        e.f64(plan.stats.best_cost);
        e.u64(plan.stats.warm_hits as u64);
        e.u64(plan.stats.warm_fact_hits as u64);
        e.u32(plan.snapshot.len() as u32);
        for (sig, already) in plan.snapshot.iter() {
            e.sig_id(*sig);
            e.u64(*already);
        }
        e.u64(plan.generation);
    }
    e.into_bytes()
}

fn encode_observed(lane: &LaneImage) -> Vec<u8> {
    let mut e = Enc::new();
    e.u32(lane.observed.len() as u32);
    for (id, oc) in &lane.observed {
        e.sig_id(*id);
        e.u64(oc.tuples);
        e.u8(oc.exhausted as u8);
    }
    e.into_bytes()
}

/// Serialize an image to the wire format (magic, checksummed header,
/// per-lane checksummed sections).
pub fn encode_snapshot(image: &SnapshotImage) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    let mut header = Enc::new();
    header.u32(FORMAT_VERSION);
    header.str(&image.engine_fingerprint);
    header.u64(image.catalog_fingerprint);
    header.u32(image.lanes.len() as u32);
    push_section(&mut out, SEC_HEADER, &header.into_bytes());
    for lane in &image.lanes {
        push_section(&mut out, SEC_INTERNER, &encode_interner(lane));
        push_section(&mut out, SEC_FACTS, &encode_facts(&lane.warm));
        push_section(&mut out, SEC_EXPENSIVE, &encode_expensive(&lane.warm));
        push_section(&mut out, SEC_CANDIDATES, &encode_candidates(&lane.warm));
        push_section(&mut out, SEC_RANK, &encode_rank(&lane.warm));
        push_section(&mut out, SEC_PLANS, &encode_plans(&lane.warm));
        push_section(&mut out, SEC_OBSERVED, &encode_observed(lane));
        push_section(&mut out, SEC_LANE_END, &[]);
    }
    out
}

/// Publish a snapshot atomically into `dir`: tmp write + fsync + rename.
///
/// Returns the published byte count. Injected faults
/// ([`SnapFaults`]) apply here: `torn_write` truncates the bytes before
/// the tmp write (the torn file still gets published — exactly the damage
/// the loader must survive), `bit_flip` flips a bit after checksums were
/// computed, `rename_fail` fails publication (the previous snapshot
/// survives), and `crash_after_write` panics between the tmp write and the
/// rename — callers testing crash recovery catch the unwind.
pub fn write_snapshot(
    dir: &Path,
    image: &SnapshotImage,
    faults: Option<&SnapFaults>,
) -> Result<u64, String> {
    let mut bytes = encode_snapshot(image);
    if let Some(f) = faults {
        if let Some(k) = f.bit_flip {
            let k = k as usize;
            if k < bytes.len() {
                bytes[k] ^= 1;
            }
        }
        if let Some(k) = f.torn_write {
            bytes.truncate(k as usize);
        }
    }
    fs::create_dir_all(dir).map_err(|e| format!("snapshot dir {}: {e}", dir.display()))?;
    let tmp = dir.join(SNAPSHOT_TMP);
    let publish = dir.join(SNAPSHOT_FILE);
    {
        let mut file =
            fs::File::create(&tmp).map_err(|e| format!("create {}: {e}", tmp.display()))?;
        file.write_all(&bytes)
            .map_err(|e| format!("write {}: {e}", tmp.display()))?;
        file.sync_all()
            .map_err(|e| format!("fsync {}: {e}", tmp.display()))?;
    }
    if faults.is_some_and(|f| f.crash_after_write) {
        panic!("injected fault: crash after snapshot tmp write");
    }
    if faults.is_some_and(|f| f.rename_fail) {
        let _ = fs::remove_file(&tmp);
        return Err("injected fault: snapshot rename failed".into());
    }
    fs::rename(&tmp, &publish).map_err(|e| format!("publish {}: {e}", publish.display()))?;
    // Make the rename itself durable where the platform allows it; a
    // failure here degrades durability, not correctness.
    if let Ok(d) = fs::File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(bytes.len() as u64)
}

/// One parsed section: id + checksum-verified body range.
struct Section<'a> {
    id: u8,
    body: &'a [u8],
    crc_ok: bool,
}

/// Iterate the section framing. A framing-level problem (length running
/// past the file, an unknown section id) ends iteration — everything after
/// it is unreliable. A checksum mismatch is *not* a framing problem: the
/// section is yielded with `crc_ok = false` so the loader can drop exactly
/// that section and keep walking.
struct Sections<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Iterator for Sections<'a> {
    type Item = Section<'a>;

    fn next(&mut self) -> Option<Section<'a>> {
        if self.pos + 9 > self.buf.len() {
            return None;
        }
        let id = self.buf[self.pos];
        let known = matches!(
            id,
            SEC_HEADER
                | SEC_INTERNER
                | SEC_FACTS
                | SEC_EXPENSIVE
                | SEC_CANDIDATES
                | SEC_RANK
                | SEC_PLANS
                | SEC_OBSERVED
                | SEC_LANE_END
        );
        if !known {
            return None;
        }
        // The 9-byte header fits (checked above); `.ok()?` keeps the
        // slice-to-array conversions off the panic path regardless.
        let len =
            u32::from_le_bytes(self.buf[self.pos + 1..self.pos + 5].try_into().ok()?) as usize;
        let crc = u32::from_le_bytes(self.buf[self.pos + 5..self.pos + 9].try_into().ok()?);
        let start = self.pos + 9;
        if start + len > self.buf.len() {
            return None;
        }
        let body = &self.buf[start..start + len];
        self.pos = start + len;
        Some(Section {
            id,
            body,
            crc_ok: crc32(body) == crc,
        })
    }
}

/// Decoded interner arena — the argument shape of
/// `SigInterner::from_entries`.
type InternerEntries = Vec<(SubExprSig, Option<(SigId, SigId)>)>;
/// Decoded facts section: the store's config fingerprint plus per-sig
/// cost facts.
type FactsSection = (Option<String>, Vec<(SigId, WarmFact)>);
/// Decoded candidate-memo rows: whole-query sig → candidate sigs.
type CandidateRows = Vec<(SigId, Box<[SigId]>)>;
/// Decoded plan-memo rows: batch shape → recorded winning plan.
type PlanRows = Vec<(Box<[SigId]>, WarmPlan)>;

fn decode_interner(body: &[u8]) -> Result<InternerEntries, String> {
    let mut d = Dec::new(body);
    let n = d.count(1)?;
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        let sig = d.sub_expr_sig()?;
        let children = match d.u8()? {
            0 => None,
            1 => Some((d.sig_id()?, d.sig_id()?)),
            t => return Err(format!("unknown children tag {t}")),
        };
        entries.push((sig, children));
    }
    d.finish()?;
    Ok(entries)
}

fn decode_facts(body: &[u8]) -> Result<FactsSection, String> {
    let mut d = Dec::new(body);
    let fingerprint = match d.u8()? {
        0 => None,
        1 => Some(d.str()?),
        t => return Err(format!("unknown fingerprint tag {t}")),
    };
    let n = d.count(17)?;
    let mut facts = Vec::with_capacity(n);
    for _ in 0..n {
        let id = d.sig_id()?;
        let card = d.f64()?;
        let streamed = d.u8()? != 0;
        let size = d.u32()?;
        facts.push((
            id,
            WarmFact {
                card,
                streamed,
                size,
            },
        ));
    }
    d.finish()?;
    Ok((fingerprint, facts))
}

fn decode_expensive(body: &[u8]) -> Result<Vec<(SigId, bool)>, String> {
    let mut d = Dec::new(body);
    let n = d.count(5)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push((d.sig_id()?, d.u8()? != 0));
    }
    d.finish()?;
    Ok(out)
}

fn decode_candidates(body: &[u8]) -> Result<CandidateRows, String> {
    let mut d = Dec::new(body);
    let n = d.count(8)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let whole = d.sig_id()?;
        let sigs = d.sig_ids()?.into_boxed_slice();
        out.push((whole, sigs));
    }
    d.finish()?;
    Ok(out)
}

fn decode_rank(body: &[u8]) -> Result<Vec<SigId>, String> {
    let mut d = Dec::new(body);
    let order = d.sig_ids()?;
    d.finish()?;
    Ok(order)
}

fn decode_observed(body: &[u8]) -> Result<Vec<(SigId, ObservedCard)>, String> {
    let mut d = Dec::new(body);
    let n = d.count(13)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let id = d.sig_id()?;
        let tuples = d.u64()?;
        let exhausted = d.u8()? != 0;
        out.push((id, ObservedCard { tuples, exhausted }));
    }
    d.finish()?;
    Ok(out)
}

fn decode_plans(body: &[u8]) -> Result<PlanRows, String> {
    let mut d = Dec::new(body);
    let n = d.count(4)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let shape = d.sig_ids()?.into_boxed_slice();
        let cand_sigs = d.sig_ids()?.into_boxed_slice();
        let n_assign = d.count(8)?;
        let mut assignment = Vec::with_capacity(n_assign);
        for _ in 0..n_assign {
            let sig = d.sig_id()?;
            let cqs = d.cq_set()?;
            assignment.push((sig, cqs));
        }
        let stats = OptStats {
            candidates: d.usize()?,
            explored: d.usize()?,
            memo_hits: d.usize()?,
            best_cost: d.f64()?,
            warm_hits: d.usize()?,
            warm_fact_hits: d.usize()?,
        };
        let n_snap = d.count(12)?;
        let mut snapshot = Vec::with_capacity(n_snap);
        for _ in 0..n_snap {
            snapshot.push((d.sig_id()?, d.u64()?));
        }
        let generation = d.u64()?;
        out.push((
            shape,
            WarmPlan {
                cand_sigs,
                assignment: assignment.into_boxed_slice(),
                stats,
                snapshot: snapshot.into_boxed_slice(),
                generation,
            },
        ));
    }
    d.finish()?;
    Ok(out)
}

/// Per-lane accumulation while walking sections.
#[derive(Default)]
struct LaneBuild {
    interner: Option<SigInterner>,
    export: WarmExport,
    observed: Vec<(SigId, ObservedCard)>,
    salvaged: usize,
}

fn note_reject(summary: &mut SnapshotSummary, reason: String) {
    summary.sections_rejected += 1;
    summary.reason.get_or_insert(reason);
}

/// Load and validate the published snapshot in `dir`.
///
/// Returns per-lane rehydrated state (index = lane index at recording
/// time; `None` for lanes that could not be salvaged) plus the
/// [`SnapshotSummary`] describing what happened. All failure modes —
/// missing file, bad magic/version, fingerprint mismatches, checksum
/// failures, truncation, content that fails semantic validation — degrade
/// to cold state for the affected scope and are recorded; nothing panics.
/// When anything was rejected, the file is quarantined aside so the next
/// publication starts clean and the evidence survives for inspection.
pub fn load_snapshot(
    dir: &Path,
    expected_fingerprint: &str,
    catalog: &Catalog,
    faults: Option<&SnapFaults>,
) -> (Vec<Option<LoadedLane>>, SnapshotSummary) {
    let mut summary = SnapshotSummary::default();
    let started = std::time::Instant::now();
    let path = dir.join(SNAPSHOT_FILE);
    let mut bytes = match fs::read(&path) {
        Ok(b) => b,
        Err(_) => return (Vec::new(), summary), // no snapshot: plain cold start
    };
    summary.attempted = true;
    summary.bytes = bytes.len() as u64;
    if let Some(k) = faults.and_then(|f| f.short_read) {
        bytes.truncate(k as usize);
    }
    let lanes = parse_snapshot(&bytes, expected_fingerprint, catalog, &mut summary);
    summary.loaded = lanes.iter().any(|l| l.is_some());
    summary.lanes_loaded = lanes.iter().filter(|l| l.is_some()).count();
    if summary.reason.is_some() {
        summary.quarantined = quarantine(dir, &path);
    }
    summary.load_us = started.elapsed().as_micros() as u64;
    (lanes, summary)
}

/// Move a damaged/mismatched snapshot aside as `qsys.snapshot.corrupt-N`.
fn quarantine(dir: &Path, path: &Path) -> Option<String> {
    for n in 0..1000u32 {
        let target: PathBuf = dir.join(format!("{SNAPSHOT_FILE}.corrupt-{n}"));
        if target.exists() {
            continue;
        }
        return match fs::rename(path, &target) {
            Ok(()) => Some(target.display().to_string()),
            Err(_) => None,
        };
    }
    None
}

fn parse_snapshot(
    bytes: &[u8],
    expected_fingerprint: &str,
    catalog: &Catalog,
    summary: &mut SnapshotSummary,
) -> Vec<Option<LoadedLane>> {
    if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
        note_reject(summary, "bad magic: not a qsys snapshot".into());
        return Vec::new();
    }
    let mut sections = Sections {
        buf: bytes,
        pos: MAGIC.len(),
    };
    // Header first: any problem here rejects the whole file, because
    // nothing after it can be trusted to belong to this engine.
    let header = match sections.next() {
        Some(s) if s.id == SEC_HEADER && s.crc_ok => s,
        _ => {
            note_reject(summary, "missing or corrupt header section".into());
            return Vec::new();
        }
    };
    let mut d = Dec::new(header.body);
    let parsed = (|| -> Result<(u32, String, u64, u32), String> {
        let version = d.u32()?;
        let fp = d.str()?;
        let cat = d.u64()?;
        let lanes = d.u32()?;
        Ok((version, fp, cat, lanes))
    })();
    let (version, fingerprint, catalog_fp, lane_count) = match parsed {
        Ok(h) => h,
        Err(e) => {
            note_reject(summary, format!("header decode: {e}"));
            return Vec::new();
        }
    };
    if !(MIN_FORMAT_VERSION..=FORMAT_VERSION).contains(&version) {
        note_reject(
            summary,
            format!("format version {version} (accepted {MIN_FORMAT_VERSION}..={FORMAT_VERSION})"),
        );
        return Vec::new();
    }
    if fingerprint != expected_fingerprint {
        note_reject(
            summary,
            format!("engine config fingerprint mismatch (snapshot `{fingerprint}`)"),
        );
        return Vec::new();
    }
    if catalog_fp != catalog_fingerprint(catalog) {
        note_reject(summary, "catalog fingerprint mismatch".into());
        return Vec::new();
    }
    if lane_count > MAX_LANES {
        note_reject(summary, format!("implausible lane count {lane_count}"));
        return Vec::new();
    }
    summary.sections_salvaged += 1; // the header itself

    let mut lanes: Vec<Option<LoadedLane>> = Vec::new();
    let mut build = LaneBuild::default();
    for section in sections {
        if lanes.len() >= lane_count as usize {
            break;
        }
        if !section.crc_ok {
            note_reject(
                summary,
                format!("checksum mismatch in section {:#x}", section.id),
            );
            continue;
        }
        match section.id {
            SEC_INTERNER => {
                match decode_interner(section.body)
                    .and_then(SigInterner::from_entries)
                    .and_then(|interner| validate_catalog_bounds(interner, catalog))
                {
                    Ok(interner) => {
                        build.interner = Some(interner);
                        build.salvaged += 1;
                    }
                    Err(e) => note_reject(summary, format!("interner section: {e}")),
                }
            }
            SEC_FACTS => match decode_facts(section.body) {
                Ok((fingerprint, facts)) => {
                    if fingerprint
                        .as_deref()
                        .is_some_and(|fp| fp != expected_fingerprint)
                    {
                        note_reject(summary, "warm store fingerprint mismatch".into());
                    } else {
                        build.export.fingerprint = fingerprint;
                        build.export.facts = facts;
                        build.salvaged += 1;
                    }
                }
                Err(e) => note_reject(summary, format!("facts section: {e}")),
            },
            SEC_EXPENSIVE => match decode_expensive(section.body) {
                Ok(expensive) => {
                    build.export.expensive = expensive;
                    build.salvaged += 1;
                }
                Err(e) => note_reject(summary, format!("expensive section: {e}")),
            },
            SEC_CANDIDATES => match decode_candidates(section.body) {
                Ok(cands) => {
                    build.export.cq_candidates = cands;
                    build.salvaged += 1;
                }
                Err(e) => note_reject(summary, format!("candidates section: {e}")),
            },
            SEC_RANK => match decode_rank(section.body) {
                Ok(order) => {
                    build.export.canon_order = order;
                    build.salvaged += 1;
                }
                Err(e) => note_reject(summary, format!("rank section: {e}")),
            },
            SEC_PLANS => match decode_plans(section.body) {
                Ok(plans) => {
                    build.export.plans = plans;
                    build.salvaged += 1;
                }
                Err(e) => note_reject(summary, format!("plans section: {e}")),
            },
            SEC_OBSERVED => match decode_observed(section.body) {
                Ok(observed) => {
                    build.observed = observed;
                    build.salvaged += 1;
                }
                Err(e) => note_reject(summary, format!("observed section: {e}")),
            },
            SEC_LANE_END => {
                lanes.push(finish_lane(
                    std::mem::take(&mut build),
                    expected_fingerprint,
                    summary,
                ));
            }
            // A second header (e.g. a bit-flipped section id) is damage.
            SEC_HEADER => note_reject(summary, "unexpected header section mid-file".into()),
            _ => unreachable!("Sections only yields known ids"),
        }
    }
    if lanes.len() < lane_count as usize {
        note_reject(
            summary,
            format!("truncated: {} of {lane_count} lanes present", lanes.len()),
        );
    }
    lanes
}

/// The interner's ids must all name relations the live catalog knows —
/// the "generation disagrees with the catalog" rejection: replaying cost
/// facts or plans against relations that do not exist (or a reshaped
/// schema) could change decisions, so the whole lane cold-starts instead.
fn validate_catalog_bounds(
    interner: SigInterner,
    catalog: &Catalog,
) -> Result<SigInterner, String> {
    let n = catalog.relation_count() as u32;
    for i in 0..interner.len() {
        if interner.rels(SigId(i as u32)).iter().any(|r| r.0 >= n) {
            return Err(format!(
                "entry {i} names a relation outside the live catalog ({n} relations)"
            ));
        }
    }
    Ok(interner)
}

/// Close out one lane: build the warm store from whatever sections
/// survived, validated against the rebuilt interner. A lane without a
/// valid interner salvages nothing (every other section is keyed on its
/// ids); a warm store that fails validation falls back to retrying
/// without the plan memo, then to cold.
fn finish_lane(
    build: LaneBuild,
    expected_fingerprint: &str,
    summary: &mut SnapshotSummary,
) -> Option<LoadedLane> {
    let mut salvaged = build.salvaged;
    let Some(interner) = build.interner else {
        summary.sections_rejected += salvaged; // sections without their interner
        summary
            .reason
            .get_or_insert_with(|| "lane had no valid interner section".into());
        return None;
    };
    let mut export = build.export;
    // A store that was populated before the snapshot carries the engine
    // fingerprint; an empty one carries `None`. Stamp the expected
    // fingerprint either way so the optimizer's first `ensure_config`
    // call keeps the loaded state instead of resetting a `None` store.
    export.fingerprint = Some(expected_fingerprint.to_string());
    let warm = match WarmStore::from_export(export.clone(), &interner) {
        Ok(warm) => warm,
        Err(e) => {
            note_reject(summary, format!("warm state validation: {e}"));
            // Retry without the plan memo — the most generation-sensitive
            // section — before giving up on warmth entirely.
            let mut no_plans = export;
            no_plans.plans = Vec::new();
            match WarmStore::from_export(no_plans, &interner) {
                Ok(warm) => warm,
                Err(e2) => {
                    note_reject(summary, format!("warm state validation (sans plans): {e2}"));
                    let mut cold = WarmStore::new();
                    cold.ensure_config(expected_fingerprint);
                    cold
                }
            }
        }
    };
    // Observed cards are hints, not decisions: an image that fails the
    // interner-bounds check drops just this section, never the lane.
    let observed = match ObservedStats::from_export(build.observed, &interner) {
        Ok(observed) => observed,
        Err(e) => {
            note_reject(summary, format!("observed section validation: {e}"));
            salvaged = salvaged.saturating_sub(1); // it was counted on decode
            ObservedStats::new()
        }
    };
    summary.sections_salvaged += salvaged;
    Some(LoadedLane {
        interner,
        warm,
        observed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsys_catalog::{EdgeKind, RelationStats};
    use qsys_types::{RelId, SourceId};

    fn catalog() -> Catalog {
        let mut b = Catalog::builder();
        let a = b.relation(
            "a",
            SourceId::new(0),
            vec!["k".into(), "v".into()],
            None,
            1.0,
            RelationStats::with_cardinality(100),
        );
        let c = b.relation(
            "c",
            SourceId::new(0),
            vec!["k".into(), "v".into()],
            None,
            1.0,
            RelationStats::with_cardinality(100),
        );
        b.edge(a, 1, c, 0, EdgeKind::ForeignKey, 1.0, 1.0);
        b.build()
    }

    fn image(catalog: &Catalog) -> SnapshotImage {
        let mut interner = SigInterner::new();
        let a = interner.relation(RelId::new(0), None);
        let c = interner.relation(RelId::new(1), None);
        let ac = interner.combine(a, c, &[(RelId::new(0), 1, RelId::new(1), 0)]);
        let mut warm = WarmStore::new();
        warm.ensure_config("fp");
        warm.set_fact(
            ac,
            WarmFact {
                card: 17.0,
                streamed: true,
                size: 2,
            },
        );
        warm.set_expensive(a, false);
        warm.set_cq_candidates(ac, Box::new([a, c]));
        warm.ensure_ranked([a, c, ac], &interner);
        SnapshotImage {
            engine_fingerprint: "fp".into(),
            catalog_fingerprint: catalog_fingerprint(catalog),
            lanes: vec![LaneImage {
                interner: interner.export_entries(),
                warm: warm.export(),
                observed: vec![(
                    a,
                    ObservedCard {
                        tuples: 42,
                        exhausted: true,
                    },
                )],
            }],
        }
    }

    /// Encode `image` in the version-1 wire layout: v1 header, no
    /// observed section — what a pre-adaptive build would have written.
    fn encode_v1(image: &SnapshotImage) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        let mut header = Enc::new();
        header.u32(1);
        header.str(&image.engine_fingerprint);
        header.u64(image.catalog_fingerprint);
        header.u32(image.lanes.len() as u32);
        push_section(&mut out, SEC_HEADER, &header.into_bytes());
        for lane in &image.lanes {
            push_section(&mut out, SEC_INTERNER, &encode_interner(lane));
            push_section(&mut out, SEC_FACTS, &encode_facts(&lane.warm));
            push_section(&mut out, SEC_EXPENSIVE, &encode_expensive(&lane.warm));
            push_section(&mut out, SEC_CANDIDATES, &encode_candidates(&lane.warm));
            push_section(&mut out, SEC_RANK, &encode_rank(&lane.warm));
            push_section(&mut out, SEC_PLANS, &encode_plans(&lane.warm));
            push_section(&mut out, SEC_LANE_END, &[]);
        }
        out
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        static NEXT: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
        let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "qsys-snapshot-test-{}-{tag}-{n}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn roundtrip_loads_every_section() {
        let cat = catalog();
        let img = image(&cat);
        let dir = tmp_dir("roundtrip");
        let bytes = write_snapshot(&dir, &img, None).unwrap();
        assert!(bytes > 0);
        let (lanes, summary) = load_snapshot(&dir, "fp", &cat, None);
        assert_eq!(summary.reason, None, "{summary:?}");
        assert!(summary.loaded && summary.attempted);
        assert_eq!(summary.lanes_loaded, 1);
        assert_eq!(summary.sections_rejected, 0);
        assert_eq!(summary.bytes, bytes);
        assert!(summary.quarantined.is_none());
        let lane = lanes[0].as_ref().unwrap();
        assert_eq!(lane.interner.len(), 3);
        let mut warm = WarmStore::from_export(lane.warm.export(), &lane.interner).unwrap();
        warm.begin_batch();
        assert!(warm.fact(SigId(2)).is_some());
        assert_eq!(
            lane.observed.card(SigId(0)),
            Some(ObservedCard {
                tuples: 42,
                exhausted: true
            }),
            "observed cards survive the roundtrip"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_1_snapshot_still_loads_without_observations() {
        let cat = catalog();
        let img = image(&cat);
        let dir = tmp_dir("v1compat");
        fs::write(dir.join(SNAPSHOT_FILE), encode_v1(&img)).unwrap();
        let (lanes, summary) = load_snapshot(&dir, "fp", &cat, None);
        assert_eq!(summary.reason, None, "{summary:?}");
        assert!(summary.loaded);
        let lane = lanes[0].as_ref().unwrap();
        assert_eq!(lane.interner.len(), 3);
        assert!(
            lane.observed.is_empty(),
            "a pre-adaptive snapshot carries no observations"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_observed_section_drops_only_the_hints() {
        let cat = catalog();
        let mut img = image(&cat);
        // Out-of-bounds id: decodes fine, fails interner validation.
        img.lanes[0].observed = vec![(
            SigId(999),
            ObservedCard {
                tuples: 1,
                exhausted: false,
            },
        )];
        let dir = tmp_dir("obsbad");
        write_snapshot(&dir, &img, None).unwrap();
        let (lanes, summary) = load_snapshot(&dir, "fp", &cat, None);
        assert!(summary.loaded, "the lane itself still rehydrates");
        assert!(summary
            .reason
            .as_deref()
            .unwrap()
            .contains("observed section validation"));
        let lane = lanes[0].as_ref().unwrap();
        assert!(lane.observed.is_empty());
        assert!(
            lane.warm.peek_fact(SigId(2)).is_some(),
            "warm facts are untouched by the dropped hints"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_is_a_plain_cold_start() {
        let dir = tmp_dir("missing");
        let (lanes, summary) = load_snapshot(&dir, "fp", &catalog(), None);
        assert!(lanes.is_empty());
        assert!(!summary.attempted && !summary.loaded);
        assert_eq!(summary.reason, None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_and_version_mismatches_reject_and_quarantine() {
        let cat = catalog();
        let dir = tmp_dir("fpmismatch");
        write_snapshot(&dir, &image(&cat), None).unwrap();
        let (lanes, summary) = load_snapshot(&dir, "other-config", &cat, None);
        assert!(lanes.iter().all(|l| l.is_none()) && !summary.loaded);
        assert!(summary.reason.as_deref().unwrap().contains("fingerprint"));
        let quarantined = summary.quarantined.expect("file moved aside");
        assert!(Path::new(&quarantined).exists());
        assert!(!dir.join(SNAPSHOT_FILE).exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn catalog_mismatch_rejects() {
        let cat = catalog();
        let dir = tmp_dir("catmismatch");
        write_snapshot(&dir, &image(&cat), None).unwrap();
        let mut b = Catalog::builder();
        b.relation(
            "other",
            SourceId::new(0),
            vec!["k".into()],
            None,
            1.0,
            RelationStats::with_cardinality(5),
        );
        let other = b.build();
        let (lanes, summary) = load_snapshot(&dir, "fp", &other, None);
        assert!(!summary.loaded && lanes.iter().all(|l| l.is_none()));
        assert!(summary.reason.as_deref().unwrap().contains("catalog"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_truncation_point_fails_soft() {
        let cat = catalog();
        let img = image(&cat);
        let full = encode_snapshot(&img);
        let dir = tmp_dir("truncate");
        // Walk a spread of cut points including 0, mid-header, mid-section.
        for cut in (0..full.len()).step_by(7).chain([full.len() - 1]) {
            fs::write(dir.join(SNAPSHOT_FILE), &full[..cut]).unwrap();
            let (lanes, summary) = load_snapshot(&dir, "fp", &cat, None);
            assert!(
                summary.reason.is_some(),
                "cut at {cut} must be detected as damage"
            );
            // Whatever loads must still be internally valid.
            for lane in lanes.iter().flatten() {
                assert!(lane.interner.len() <= 3);
            }
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_bit_flip_fails_soft_or_loads_nothing_wrong() {
        let cat = catalog();
        let img = image(&cat);
        let full = encode_snapshot(&img);
        let dir = tmp_dir("bitflip");
        for byte in 0..full.len() {
            let mut damaged = full.clone();
            damaged[byte] ^= 0x10;
            fs::write(dir.join(SNAPSHOT_FILE), &damaged).unwrap();
            // Must never panic; loaded lanes must have passed validation.
            let (_lanes, _summary) = load_snapshot(&dir, "fp", &cat, None);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_faults_corrupt_deterministically() {
        let cat = catalog();
        let img = image(&cat);

        // Torn write: published but truncated → detected at load.
        let dir = tmp_dir("torn");
        let faults = SnapFaults {
            torn_write: Some(40),
            ..SnapFaults::default()
        };
        assert_eq!(write_snapshot(&dir, &img, Some(&faults)).unwrap(), 40);
        let (_, summary) = load_snapshot(&dir, "fp", &cat, None);
        assert!(summary.attempted && summary.reason.is_some());
        let _ = fs::remove_dir_all(&dir);

        // Bit flip after checksumming → checksum catches it.
        let dir = tmp_dir("flip");
        let faults = SnapFaults {
            bit_flip: Some(64),
            ..SnapFaults::default()
        };
        write_snapshot(&dir, &img, Some(&faults)).unwrap();
        let (_, summary) = load_snapshot(&dir, "fp", &cat, None);
        assert!(summary.reason.is_some());
        let _ = fs::remove_dir_all(&dir);

        // Short read: loader sees a prefix → detected.
        let dir = tmp_dir("short");
        write_snapshot(&dir, &img, None).unwrap();
        let faults = SnapFaults {
            short_read: Some(50),
            ..SnapFaults::default()
        };
        let (_, summary) = load_snapshot(&dir, "fp", &cat, Some(&faults));
        assert!(summary.reason.is_some());
        let _ = fs::remove_dir_all(&dir);

        // Rename failure: publication fails, nothing published.
        let dir = tmp_dir("rename");
        let faults = SnapFaults {
            rename_fail: true,
            ..SnapFaults::default()
        };
        assert!(write_snapshot(&dir, &img, Some(&faults)).is_err());
        assert!(!dir.join(SNAPSHOT_FILE).exists());
        let _ = fs::remove_dir_all(&dir);

        // Crash hook: panics after the tmp write, before the rename.
        let dir = tmp_dir("crash");
        let faults = SnapFaults {
            crash_after_write: true,
            ..SnapFaults::default()
        };
        let img2 = img.clone();
        let dir2 = dir.clone();
        let crashed = std::panic::catch_unwind(move || {
            let _ = write_snapshot(&dir2, &img2, Some(&faults));
        });
        assert!(crashed.is_err());
        assert!(dir.join(SNAPSHOT_TMP).exists(), "tmp left behind");
        assert!(!dir.join(SNAPSHOT_FILE).exists(), "never published");
        // A restart after the crash cold-starts cleanly (no file = no
        // attempt) and the next publication succeeds over the debris.
        let (_, summary) = load_snapshot(&dir, "fp", &cat, None);
        assert!(!summary.attempted);
        write_snapshot(&dir, &img, None).unwrap();
        let (_, summary) = load_snapshot(&dir, "fp", &cat, None);
        assert!(summary.loaded && summary.reason.is_none());
        let _ = fs::remove_dir_all(&dir);
    }
}

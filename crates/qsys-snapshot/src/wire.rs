//! Hand-rolled binary encoding for snapshot sections.
//!
//! The workspace carries no serialization dependency, and the snapshot
//! loader must survive arbitrary byte corruption, so the wire layer is a
//! small fixed-width little-endian encoding with a bounds-checked reader:
//! every read returns `Result`, counts are sanity-checked against the
//! remaining buffer before allocating, and no input can panic the decoder.
//! Compactness is a non-goal — snapshots are tens of kilobytes and the
//! value of a format a debugger can eyeball exceeds a varint's savings.

use qsys_query::{CqIdx, CqSet, SigId, SubExprSig};
use qsys_types::{RelId, Selection, Value};

/// Checksum used for per-section framing: CRC-32 (IEEE 802.3 polynomial,
/// reflected), computed bitwise — the table would be larger than the code.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// FNV-1a 64-bit — the catalog fingerprint hash. `DefaultHasher` is
/// explicitly unstable across Rust releases; a snapshot fingerprint must
/// hash identically on whatever toolchain reloads it.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Append-only encoder over a byte vector.
#[derive(Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    pub fn new() -> Enc {
        Enc::default()
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    pub fn sig_id(&mut self, id: SigId) {
        self.u32(id.0);
    }

    pub fn value(&mut self, v: &Value) {
        match v {
            Value::Null => self.u8(0),
            Value::Int(i) => {
                self.u8(1);
                self.u64(*i as u64);
            }
            Value::Float(f) => {
                self.u8(2);
                self.f64(*f);
            }
            Value::Str(s) => {
                self.u8(3);
                self.str(s);
            }
        }
    }

    pub fn selection(&mut self, s: &Selection) {
        self.u64(s.column as u64);
        self.value(&s.value);
    }

    pub fn sub_expr_sig(&mut self, sig: &SubExprSig) {
        self.u32(sig.atoms.len() as u32);
        for (rel, sel) in &sig.atoms {
            self.u32(rel.0);
            match sel {
                None => self.u8(0),
                Some(s) => {
                    self.u8(1);
                    self.selection(s);
                }
            }
        }
        self.u32(sig.joins.len() as u32);
        for &(l, lc, r, rc) in &sig.joins {
            self.u32(l.0);
            self.u64(lc as u64);
            self.u32(r.0);
            self.u64(rc as u64);
        }
    }

    pub fn cq_set(&mut self, set: &CqSet) {
        let indices: Vec<u16> = set.iter().map(|i| i.0).collect();
        self.u32(indices.len() as u32);
        for i in indices {
            self.u16(i);
        }
    }

    pub fn sig_ids(&mut self, ids: &[SigId]) {
        self.u32(ids.len() as u32);
        for &id in ids {
            self.sig_id(id);
        }
    }
}

/// Bounds-checked reader; every method fails soft so corrupt bytes can
/// never panic the loader.
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    pub fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub fn done(&self) -> bool {
        self.remaining() == 0
    }

    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.remaining() < n {
            return Err(format!(
                "short section: wanted {n} bytes, {} remain",
                self.remaining()
            ));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Exactly `N` bytes as an array. `bytes(N)` already errors on a
    /// short section, so the slice-to-array conversion is checked once
    /// here instead of unwrapped at every scalar reader.
    fn array<const N: usize>(&mut self) -> Result<[u8; N], String> {
        self.bytes(N)?
            .try_into()
            .map_err(|_| format!("short read for {N}-byte scalar"))
    }

    pub fn u8(&mut self) -> Result<u8, String> {
        Ok(self.bytes(1)?[0])
    }

    pub fn u16(&mut self) -> Result<u16, String> {
        Ok(u16::from_le_bytes(self.array()?))
    }

    pub fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.array()?))
    }

    pub fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.array()?))
    }

    pub fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub fn usize(&mut self) -> Result<usize, String> {
        usize::try_from(self.u64()?).map_err(|_| "count exceeds usize".to_string())
    }

    /// An element count, validated against the bytes actually present
    /// (`min_elem_bytes` each) so a corrupt length cannot provoke a huge
    /// allocation before the decode fails.
    pub fn count(&mut self, min_elem_bytes: usize) -> Result<usize, String> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_elem_bytes) > self.remaining() {
            return Err(format!("count {n} exceeds section size"));
        }
        Ok(n)
    }

    pub fn str(&mut self) -> Result<String, String> {
        let n = self.count(1)?;
        let bytes = self.bytes(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| "invalid utf-8 in string".to_string())
    }

    pub fn sig_id(&mut self) -> Result<SigId, String> {
        Ok(SigId(self.u32()?))
    }

    pub fn value(&mut self) -> Result<Value, String> {
        match self.u8()? {
            0 => Ok(Value::Null),
            1 => Ok(Value::Int(self.u64()? as i64)),
            2 => Ok(Value::Float(self.f64()?)),
            3 => Ok(Value::str(self.str()?)),
            t => Err(format!("unknown value tag {t}")),
        }
    }

    pub fn selection(&mut self) -> Result<Selection, String> {
        let column = self.usize()?;
        let value = self.value()?;
        Ok(Selection { column, value })
    }

    pub fn sub_expr_sig(&mut self) -> Result<SubExprSig, String> {
        let n_atoms = self.count(5)?;
        let mut atoms = Vec::with_capacity(n_atoms);
        for _ in 0..n_atoms {
            let rel = RelId::new(self.u32()?);
            let sel = match self.u8()? {
                0 => None,
                1 => Some(self.selection()?),
                t => return Err(format!("unknown selection tag {t}")),
            };
            atoms.push((rel, sel));
        }
        let n_joins = self.count(24)?;
        let mut joins = Vec::with_capacity(n_joins);
        for _ in 0..n_joins {
            let l = RelId::new(self.u32()?);
            let lc = self.usize()?;
            let r = RelId::new(self.u32()?);
            let rc = self.usize()?;
            joins.push((l, lc, r, rc));
        }
        Ok(SubExprSig { atoms, joins })
    }

    pub fn cq_set(&mut self) -> Result<CqSet, String> {
        let n = self.count(2)?;
        let mut indices = Vec::with_capacity(n);
        for _ in 0..n {
            indices.push(CqIdx(self.u16()?));
        }
        Ok(CqSet::from_indices(indices))
    }

    pub fn sig_ids(&mut self) -> Result<Vec<SigId>, String> {
        let n = self.count(4)?;
        let mut ids = Vec::with_capacity(n);
        for _ in 0..n {
            ids.push(self.sig_id()?);
        }
        Ok(ids)
    }

    /// The decode consumed exactly the section body.
    pub fn finish(self) -> Result<(), String> {
        if self.done() {
            Ok(())
        } else {
            Err(format!("{} trailing bytes in section", self.remaining()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The IEEE CRC-32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn fnv1a64_matches_known_vectors() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn primitives_round_trip() {
        let mut e = Enc::new();
        e.u8(7);
        e.u16(300);
        e.u32(70_000);
        e.u64(1 << 40);
        e.f64(-2.5);
        e.str("héllo");
        e.sig_id(SigId(42));
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u16().unwrap(), 300);
        assert_eq!(d.u32().unwrap(), 70_000);
        assert_eq!(d.u64().unwrap(), 1 << 40);
        assert_eq!(d.f64().unwrap(), -2.5);
        assert_eq!(d.str().unwrap(), "héllo");
        assert_eq!(d.sig_id().unwrap(), SigId(42));
        assert!(d.finish().is_ok());
    }

    #[test]
    fn composites_round_trip() {
        let sig = SubExprSig {
            atoms: vec![
                (RelId::new(1), None),
                (RelId::new(2), Some(Selection::eq(3, Value::str("kw")))),
            ],
            joins: vec![(RelId::new(1), 0, RelId::new(2), 1)],
        };
        let set = CqSet::from_indices([CqIdx(0), CqIdx(5), CqIdx(300)]);
        let mut e = Enc::new();
        e.sub_expr_sig(&sig);
        e.cq_set(&set);
        e.value(&Value::Null);
        e.value(&Value::Int(-9));
        e.value(&Value::Float(f64::NEG_INFINITY));
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert_eq!(d.sub_expr_sig().unwrap(), sig);
        let decoded = d.cq_set().unwrap();
        assert_eq!(
            decoded.iter().collect::<Vec<_>>(),
            set.iter().collect::<Vec<_>>()
        );
        assert_eq!(d.value().unwrap(), Value::Null);
        assert_eq!(d.value().unwrap(), Value::Int(-9));
        assert_eq!(d.value().unwrap(), Value::Float(f64::NEG_INFINITY));
        assert!(d.finish().is_ok());
    }

    #[test]
    fn corrupt_counts_fail_soft() {
        let mut e = Enc::new();
        e.u32(u32::MAX); // an absurd element count with no bytes behind it
        let bytes = e.into_bytes();
        assert!(Dec::new(&bytes).sig_ids().is_err());
        assert!(Dec::new(&bytes).str().is_err());
        assert!(Dec::new(&bytes).cq_set().is_err());
        assert!(Dec::new(&[]).u32().is_err());
        assert!(Dec::new(&[9]).value().is_err(), "unknown tag rejected");
    }
}

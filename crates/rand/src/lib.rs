//! Offline stand-in for the `rand` crate (0.9-era API subset).
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the slice of `rand` the codebase uses: a seedable
//! deterministic generator ([`rngs::StdRng`]), [`Rng::random`] for `f64` /
//! `u64` / `bool`, and [`Rng::random_range`] over integer ranges.
//!
//! `StdRng` here is xoshiro256** seeded via splitmix64 — not the real
//! crate's ChaCha12, but equally deterministic across platforms, which is
//! the property the workspace actually relies on (every experiment is
//! reproducible from a `u64` seed).

use std::ops::{Range, RangeInclusive};

/// Low-level 64-bit generator interface.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Derive a full generator state from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types drawable via [`Rng::random`].
pub trait StandardUniform: Sized {
    /// Draw a value from the standard distribution of this type.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for f64 {
    /// Uniform in `[0, 1)`.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl StandardUniform for u64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardUniform for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Range arguments accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                let draw = if span == u64::MAX {
                    rng.next_u64()
                } else {
                    rng.next_u64() % (span + 1)
                };
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i64, u64, usize, i32, u32, u16, u8);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + f64::standard(rng) * (self.end - self.start)
    }
}

/// The user-facing generator interface.
pub trait Rng: RngCore {
    /// Draw from the type's standard distribution (`f64` → `[0, 1)`).
    fn random<T: StandardUniform>(&mut self) -> T {
        T::standard(self)
    }

    /// Draw uniformly from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stands in for the real
    /// crate's `StdRng`; see the crate docs).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // Expand the seed with splitmix64, as the xoshiro authors
            // recommend.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let a = rng.random_range(3usize..9);
            assert!((3..9).contains(&a));
            let b = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&b));
            let c = rng.random_range(0u64..=0);
            assert_eq!(c, 0);
        }
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 8];
        for _ in 0..8000 {
            counts[rng.random_range(0usize..8)] += 1;
        }
        for c in counts {
            assert!((700..1300).contains(&c), "skewed bucket: {counts:?}");
        }
    }
}

#!/usr/bin/env bash
# The repo's merge gate: formatting, lints (deny warnings), and tests.
# CI runs exactly this script; run it locally before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> qsys-lint (repo-law lint: env reads, Send cells, panic paths, SeqCst, bench clocks)"
cargo run -q -p qsys-verify --bin qsys-lint

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "All checks passed."

//! The three scoring models of Section 2.1 — DISCOVER, the Q System, and
//! BANKS — answering the same keyword query. All are instances of the
//! monotone product normal form, so the same shared streams serve all
//! three; they just rank candidate networks (and hence answers)
//! differently.
//!
//! ```sh
//! cargo run --release --example score_models
//! ```

// `QSystem` is the one-shot interactive facade — since the sessionized
// redesign it admits each search through the same Engine/Session path the
// service API uses, so this example exercises that path too.
use qsys::prelude::*;
use qsys_query::{CandidateConfig, ScoreModel};
use qsys_workload::gus::{self, GusConfig};

fn main() {
    let mut cfg = GusConfig::small(21);
    cfg.min_rows = 400;
    cfg.max_rows = 1_200;
    let keywords = "protein gene";

    for model in [ScoreModel::Discover, ScoreModel::QSystem, ScoreModel::Banks] {
        // Fresh system per model so rankings are directly comparable.
        let workload = gus::generate(&cfg);
        let mut system = QSystem::new(
            workload.catalog,
            workload.index,
            workload.tables.provider(),
            EngineConfig {
                k: 5,
                sharing: SharingMode::AtcFull,
                candidate: CandidateConfig {
                    max_cqs: 6,
                    model,
                    ..CandidateConfig::default()
                },
                ..EngineConfig::default()
            },
        );
        let result = system.search(keywords, UserId::new(0)).expect("answers");
        println!("model {model:?}: \"{keywords}\"");
        println!(
            "  {} CQs generated, {} executed, {} answers",
            result.cqs_generated,
            result.cqs_executed,
            result.results.len()
        );
        for (rank, (score, tuple)) in result.results.iter().enumerate() {
            let rels: Vec<String> = tuple
                .parts()
                .iter()
                .map(|p| system.catalog().relation(p.rel).name.clone())
                .collect();
            println!(
                "  {:1}. {:.6}  [{} rels] {}",
                rank + 1,
                score.get(),
                tuple.arity(),
                rels.join(" ⋈ ")
            );
        }
        println!();
    }
    println!(
        "DISCOVER penalizes size with 1/|CQ|; the Q System exponentiates \
         learned edge+node costs; BANKS multiplies prestige weights. All \
         three remain monotone in each source's raw score, which is what \
         lets one shared stream serve users with different models."
    );
}

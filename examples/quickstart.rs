//! Quickstart: stand up a Q System over a synthetic bioinformatics
//! federation and pose a keyword query.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use qsys::{EngineConfig, QSystem, SharingMode};
use qsys_query::CandidateConfig;
use qsys_types::UserId;
use qsys_workload::gus::{self, GusConfig};

fn main() {
    // A 358-relation schema in the shape of the Genomics Unified Schema,
    // spread over several simulated remote databases.
    let mut workload_cfg = GusConfig::small(42);
    workload_cfg.min_rows = 500;
    workload_cfg.max_rows = 1_500;
    let workload = gus::generate(&workload_cfg);
    println!(
        "catalog: {} relations, {} edges",
        workload.catalog.relation_count(),
        workload.catalog.edges().len()
    );

    let mut system = QSystem::new(
        workload.catalog,
        workload.index,
        workload.tables.provider(),
        EngineConfig {
            k: 10,
            sharing: SharingMode::AtcFull,
            candidate: CandidateConfig {
                max_cqs: 8,
                ..CandidateConfig::default()
            },
            ..EngineConfig::default()
        },
    );

    // A biologist's exploratory query (Example 1 of the paper).
    let result = system
        .search("protein 'plasma membrane' gene", UserId::new(0))
        .expect("keywords match the catalog");

    println!(
        "\n» \"protein 'plasma membrane' gene\" → {} candidate networks, {} executed",
        result.cqs_generated, result.cqs_executed
    );
    println!(
        "  top-{} answers in {:.3} virtual seconds:",
        result.results.len(),
        result.response_us as f64 / 1e6
    );
    for (rank, (score, tuple)) in result.results.iter().enumerate() {
        let rels: Vec<String> = tuple
            .parts()
            .iter()
            .map(|p| format!("{}#{}", system.catalog().relation(p.rel).name, p.row_id))
            .collect();
        println!(
            "  {:2}. score {:.6}  {}",
            rank + 1,
            score.get(),
            rels.join(" ⋈ ")
        );
    }

    // Work accounting: top-k processing reads only stream prefixes.
    println!(
        "\nwork: {} tuples streamed, {} remote probes, {}",
        system.sources().tuples_streamed(),
        system.sources().probes(),
        system.sources().clock().breakdown()
    );
}

//! Quickstart: serve keyword queries over a synthetic bioinformatics
//! federation through the sessionized `Engine` API.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use qsys::prelude::*;
use qsys_query::CandidateConfig;
use qsys_workload::gus::{self, GusConfig};

fn main() {
    // A 358-relation schema in the shape of the Genomics Unified Schema,
    // spread over several simulated remote databases.
    let mut workload_cfg = GusConfig::small(42);
    workload_cfg.min_rows = 500;
    workload_cfg.max_rows = 1_500;
    let workload = gus::generate(&workload_cfg);
    println!(
        "catalog: {} relations, {} edges",
        workload.catalog.relation_count(),
        workload.catalog.edges().len()
    );

    // The long-lived service: admission queue, shared plan state, lanes.
    let mut engine = Engine::for_workload(
        &workload,
        EngineConfig {
            k: 10,
            batch_size: 2,
            sharing: SharingMode::AtcFull,
            candidate: CandidateConfig {
                max_cqs: 8,
                ..CandidateConfig::default()
            },
            ..EngineConfig::default()
        },
    );

    // Two biologists pose overlapping queries (Example 1 of the paper).
    // Submission is admission: each returns a ticket immediately; nothing
    // executes until the admission window seals.
    let alice = UserId::new(0);
    let bob = UserId::new(1);
    let t_alice = engine
        .session(alice)
        .submit("protein 'plasma membrane' gene", 0)
        .expect("keywords match the catalog");
    let t_bob = engine
        .session(bob)
        .submit("protein gene", 250_000) // arrives 0.25 virtual s later
        .expect("keywords match the catalog");
    assert_eq!(t_alice.poll(), TicketStatus::Queued);

    // batch_size = 2: Bob's arrival sealed the window; one step optimizes
    // the batch as a unit (shared subexpressions planned once), grafts it,
    // and runs it to completion.
    engine.step();
    assert_eq!(t_alice.poll(), TicketStatus::Completed);

    let report = t_alice.report().expect("completed");
    println!(
        "\n» \"{}\" → {} candidate networks, {} executed",
        report.keywords, report.cqs_generated, report.cqs_executed
    );
    println!(
        "  top-{} answers in {:.3} virtual seconds:",
        report.results,
        report.response_us as f64 / 1e6
    );
    for (rank, (score, tuple)) in t_alice.take_results().expect("results").iter().enumerate() {
        let rels: Vec<String> = tuple
            .parts()
            .iter()
            .map(|p| format!("{}#{}", engine.catalog().relation(p.rel).name, p.row_id))
            .collect();
        println!(
            "  {:2}. score {:.6}  {}",
            rank + 1,
            score.get(),
            rels.join(" ⋈ ")
        );
    }

    // Per-user accounting without re-aggregating UqReports by hand.
    let run = engine.report();
    for (name, user) in [("alice", alice), ("bob", bob)] {
        for line in run.per_user(user) {
            println!(
                "{name}: \"{}\" answered in {:.3}s — {} CQs executed, {} nodes reused",
                line.keywords,
                line.response_us as f64 / 1e6,
                line.cqs_executed,
                line.reused_nodes
            );
        }
    }
    let bob_line = run.per_ticket(&t_bob).expect("bob was served");
    println!(
        "bob's ticket: lane {}, {} recovered CQs",
        bob_line.lane, bob_line.recovered_cqs
    );

    // Work accounting: top-k processing reads only stream prefixes.
    println!(
        "\nwork: {} tuples streamed, {} remote probes, {}",
        engine.sources().tuples_streamed(),
        engine.sources().probes(),
        engine.sources().clock().breakdown()
    );
}

//! Iterative query refinement (Examples 1–3 of the paper): a scientist
//! poses a query, inspects the answers, and refines — and the system
//! answers each refinement largely from the state the previous execution
//! left in the plan graph, via grafting and `RecoverState`.
//!
//! ```sh
//! cargo run --release --example query_refinement
//! ```

use qsys::{EngineConfig, QSystem, SharingMode};
use qsys_query::CandidateConfig;
use qsys_types::UserId;
use qsys_workload::pfam::{self, PfamConfig};

fn main() {
    // The Pfam/InterPro-style integrated protein-family database.
    let workload = pfam::generate(&PfamConfig::small(11));
    let mut system = QSystem::new(
        workload.catalog,
        workload.index,
        workload.tables.provider(),
        EngineConfig {
            k: 15,
            sharing: SharingMode::AtcFull,
            candidate: CandidateConfig {
                max_cqs: 4, // the paper's Pfam setup yields 4 CQs per query
                ..CandidateConfig::default()
            },
            ..EngineConfig::default()
        },
    );

    let user = UserId::new(0);
    let session = [
        "kinase domain",  // KQ1: initial exploration
        "kinase binding", // KQ2: pivot on the second concept
        "domain binding", // KQ3: drop 'kinase', refine
    ];

    println!("One user's refinement session over Pfam/InterPro:\n");
    let mut last_streamed = 0;
    for (step, keywords) in session.iter().enumerate() {
        let result = system.search(keywords, user).expect("query answers");
        let streamed = system.sources().tuples_streamed();
        println!("KQ{}: \"{keywords}\"", step + 1);
        println!(
            "  {} CQs generated, {} executed | {} answers | {:.3} virtual s",
            result.cqs_generated,
            result.cqs_executed,
            result.results.len(),
            result.response_us as f64 / 1e6
        );
        println!(
            "  plan nodes reused: {} | new stream tuples read: {}",
            result.reused_nodes,
            streamed - last_streamed
        );
        if let Some((score, tuple)) = result.results.first() {
            let rels: Vec<String> = tuple
                .parts()
                .iter()
                .map(|p| system.catalog().relation(p.rel).name.clone())
                .collect();
            println!(
                "  best answer: score {:.6} via {}",
                score.get(),
                rels.join(" ⋈ ")
            );
        }
        println!();
        last_streamed = streamed;
    }

    println!(
        "total network traffic: {} stream tuples, {} probes — later queries \
         lean on recovered state instead of re-reading the sources",
        system.sources().tuples_streamed(),
        system.sources().probes()
    );
}

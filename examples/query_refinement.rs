//! Iterative query refinement (Examples 1–3 of the paper): a scientist
//! poses a query, inspects the answers, and refines — and the system
//! answers each refinement largely from the state the previous execution
//! left in the plan graph, via grafting and `RecoverState`.
//!
//! Driven through one long-lived [`Session`]: each refinement is a fresh
//! submission into the same engine, and the ticket's report shows how
//! much of the answer came from recovered state.
//!
//! ```sh
//! cargo run --release --example query_refinement
//! ```

use qsys::prelude::*;
use qsys_query::CandidateConfig;
use qsys_workload::pfam::{self, PfamConfig};

fn main() {
    // The Pfam/InterPro-style integrated protein-family database.
    let workload = pfam::generate(&PfamConfig::small(11));
    let mut engine = Engine::for_workload(
        &workload,
        EngineConfig {
            k: 15,
            batch_size: 1, // interactive: every query dispatches immediately
            sharing: SharingMode::AtcFull,
            candidate: CandidateConfig {
                max_cqs: 4, // the paper's Pfam setup yields 4 CQs per query
                ..CandidateConfig::default()
            },
            ..EngineConfig::default()
        },
    );

    let user = UserId::new(0);
    let session_script = [
        "kinase domain",  // KQ1: initial exploration
        "kinase binding", // KQ2: pivot on the second concept
        "domain binding", // KQ3: drop 'kinase', refine
    ];

    println!("One user's refinement session over Pfam/InterPro:\n");
    let mut last_streamed = 0;
    for (step, keywords) in session_script.iter().enumerate() {
        let ticket = engine
            .session(user)
            .submit_now(keywords)
            .expect("query answers");
        engine.step(); // batch_size 1: the window sealed on submission
        let report = ticket.report().expect("executed");
        let results = ticket.take_results().expect("executed");
        let streamed = engine.sources().tuples_streamed();
        println!("KQ{}: \"{keywords}\"", step + 1);
        println!(
            "  {} CQs generated, {} executed | {} answers | {:.3} virtual s",
            report.cqs_generated,
            report.cqs_executed,
            results.len(),
            report.response_us as f64 / 1e6
        );
        println!(
            "  plan nodes reused: {} | CQs recovered from prior state: {} | new stream tuples read: {}",
            report.reused_nodes,
            report.recovered_cqs,
            streamed - last_streamed
        );
        if let Some((score, tuple)) = results.first() {
            let rels: Vec<String> = tuple
                .parts()
                .iter()
                .map(|p| engine.catalog().relation(p.rel).name.clone())
                .collect();
            println!(
                "  best answer: score {:.6} via {}",
                score.get(),
                rels.join(" ⋈ ")
            );
        }
        println!();
        last_streamed = streamed;
    }

    println!(
        "total network traffic: {} stream tuples, {} probes — later queries \
         lean on recovered state instead of re-reading the sources",
        engine.sources().tuples_streamed(),
        engine.sources().probes()
    );
}

//! A multi-user bioinformatics portal (the paper's motivating scenario):
//! many biologists pose overlapping keyword queries over time, and the
//! middleware's job is to share work among them.
//!
//! Runs the same 8-query script under all four sharing configurations and
//! prints the paper's headline comparison: per-query response times, time
//! breakdown, and total work.
//!
//! ```sh
//! cargo run --release --example bio_portal
//! ```

use qsys::{run_workload, EngineConfig, SharingMode};
use qsys_opt::cluster::ClusterConfig;
use qsys_query::CandidateConfig;
use qsys_workload::gus::{self, GusConfig};

fn main() {
    let mut cfg = GusConfig::small(7);
    cfg.min_rows = 500;
    cfg.max_rows = 2_000;
    cfg.user_queries = 8;
    let workload = gus::generate(&cfg);

    println!("8 users, queries posed over time:");
    for (i, q) in workload.queries.iter().enumerate() {
        println!(
            "  UQ{i} @ {:5.1}s  user {}  \"{}\"",
            q.arrival_us as f64 / 1e6,
            q.user,
            q.keywords
        );
    }

    let engine = |mode: SharingMode| EngineConfig {
        k: 25,
        batch_size: 4,
        sharing: mode,
        candidate: CandidateConfig {
            max_cqs: 8,
            ..CandidateConfig::default()
        },
        ..EngineConfig::default()
    };

    println!(
        "\n{:10} {:>9} {:>10} {:>8} {:>10} {:>8} {:>6} {:>5}",
        "config", "mean(s)", "streamed", "rounds", "probes", "opt(ms)", "lanes", "warm"
    );
    for mode in [
        SharingMode::AtcCq,
        SharingMode::AtcUq,
        SharingMode::AtcFull,
        SharingMode::AtcCl(ClusterConfig::default()),
    ] {
        let report = run_workload(&workload, &engine(mode), None).expect("workload runs");
        println!(
            "{:10} {:>9.3} {:>10} {:>8} {:>10} {:>8.1} {:>6} {:>5}",
            report.config,
            report.mean_response_us() / 1e6,
            report.tuples_streamed,
            report.stream_rounds,
            report.probes,
            report.opt_us() as f64 / 1e3,
            report.lanes,
            report.warm_hits(),
        );
    }

    println!("\nPer-query response times (seconds):");
    let reports: Vec<_> = [
        SharingMode::AtcCq,
        SharingMode::AtcFull,
        SharingMode::AtcCl(ClusterConfig::default()),
    ]
    .into_iter()
    .map(|m| run_workload(&workload, &engine(m), None).unwrap())
    .collect();
    print!("{:>6}", "UQ");
    for r in &reports {
        print!(" {:>10}", r.config);
    }
    println!();
    for i in 0..reports[0].per_uq.len() {
        print!("{:>6}", format!("UQ{i}"));
        for r in &reports {
            print!(" {:>10.3}", r.per_uq[i].response_us as f64 / 1e6);
        }
        println!();
    }
}

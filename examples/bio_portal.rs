//! A multi-user bioinformatics portal (the paper's motivating scenario):
//! many biologists pose overlapping keyword queries over time, and the
//! middleware's job is to share work among them.
//!
//! The first half drives the portal the way a service would: per-user
//! sessions submit queries at their arrival times, batches dispatch as
//! admission windows seal, and tickets stream each user's answers back.
//! The second half runs the same 8-query script under all four sharing
//! configurations through the scripted driver and prints the paper's
//! headline comparison.
//!
//! ```sh
//! cargo run --release --example bio_portal
//! ```

use qsys::prelude::*;
use qsys_opt::cluster::ClusterConfig;
use qsys_query::CandidateConfig;
use qsys_workload::gus::{self, GusConfig};

fn main() {
    let mut cfg = GusConfig::small(7);
    cfg.min_rows = 500;
    cfg.max_rows = 2_000;
    cfg.user_queries = 8;
    let workload = gus::generate(&cfg);

    println!("8 users, queries posed over time:");
    for (i, q) in workload.queries.iter().enumerate() {
        println!(
            "  UQ{i} @ {:5.1}s  user {}  \"{}\"",
            q.arrival_us as f64 / 1e6,
            q.user,
            q.keywords
        );
    }

    let engine_cfg = |mode: SharingMode| EngineConfig {
        k: 25,
        batch_size: 4,
        sharing: mode,
        candidate: CandidateConfig {
            max_cqs: 8,
            ..CandidateConfig::default()
        },
        ..EngineConfig::default()
    };

    // ---- The portal, served incrementally -------------------------------
    let mut engine = Engine::for_workload(&workload, engine_cfg(SharingMode::AtcFull));
    let mut tickets = Vec::new();
    println!("\nServing incrementally (batches of 4):");
    for q in &workload.queries {
        let mut session = engine.session(q.user);
        if let Some(costs) = &q.edge_costs {
            session = session.with_edge_costs(costs.clone());
        }
        match session.submit(&q.keywords, q.arrival_us) {
            Ok(ticket) => tickets.push(ticket),
            Err(_) => println!("  \"{}\" → no results (skipped)", q.keywords),
        }
        // Dispatch whatever sealed; tickets complete as their batch runs.
        let ran = engine.step();
        if ran > 0 {
            println!(
                "  [{} pending] dispatched {ran} batch(es); completed so far: {}",
                engine.pending(),
                tickets
                    .iter()
                    .filter(|t| t.poll() != TicketStatus::Queued)
                    .count()
            );
        }
    }
    engine.run_until_idle(); // flush the final partial window
    for t in &tickets {
        let line = t.report().expect("portal drained");
        println!(
            "  user {} \"{}\" → {} answers in {:.3}s ({} nodes reused, {} CQs recovered)",
            line.user,
            line.keywords,
            line.results,
            line.response_us as f64 / 1e6,
            line.reused_nodes,
            line.recovered_cqs
        );
    }

    // ---- The paper's configuration comparison ---------------------------
    println!(
        "\n{:10} {:>9} {:>10} {:>8} {:>10} {:>8} {:>6} {:>5}",
        "config", "mean(s)", "streamed", "rounds", "probes", "opt(ms)", "lanes", "warm"
    );
    for mode in [
        SharingMode::AtcCq,
        SharingMode::AtcUq,
        SharingMode::AtcFull,
        SharingMode::AtcCl(ClusterConfig::default()),
    ] {
        let report = run_workload(&workload, &engine_cfg(mode), None).expect("workload runs");
        println!(
            "{:10} {:>9.3} {:>10} {:>8} {:>10} {:>8.1} {:>6} {:>5}",
            report.config,
            report.mean_response_us() / 1e6,
            report.tuples_streamed,
            report.stream_rounds,
            report.probes,
            report.opt_us() as f64 / 1e3,
            report.lanes,
            report.warm_hits(),
        );
    }

    println!("\nPer-query response times (seconds):");
    let reports: Vec<_> = [
        SharingMode::AtcCq,
        SharingMode::AtcFull,
        SharingMode::AtcCl(ClusterConfig::default()),
    ]
    .into_iter()
    .map(|m| run_workload(&workload, &engine_cfg(m), None).unwrap())
    .collect();
    print!("{:>6}", "UQ");
    for r in &reports {
        print!(" {:>10}", r.config);
    }
    println!();
    for i in 0..reports[0].per_uq.len() {
        print!("{:>6}", format!("UQ{i}"));
        for r in &reports {
            print!(" {:>10.3}", r.per_uq[i].response_us as f64 / 1e6);
        }
        println!();
    }
}

//! The sessionized engine: incremental query admission behind an
//! [`Engine`]/[`Session`] facade.
//!
//! The paper's premise is a *continuously arriving* stream of user queries
//! whose subexpressions overlap across concurrent users — a multi-user
//! search service, not a scripted benchmark. This module is that service
//! boundary:
//!
//! - [`Engine`] is the long-lived system: it owns the catalog, the source
//!   provider, and the execution **lanes** (plan graph + shared interner +
//!   warm store + eviction state + ATC), and drives them — on worker
//!   threads when more than one lane has work.
//! - [`Engine::session`] opens a lightweight per-user [`Session`];
//!   [`Session::submit`] converts a keyword query into candidate networks
//!   and *admits* it, returning a [`QueryTicket`] immediately.
//! - Admitted queries accumulate in per-lane **admission windows**: a
//!   window seals into a dispatchable batch when it reaches
//!   [`EngineConfig::batch_size`] queries, when a new arrival falls outside
//!   [`EngineConfig::arrival_window_us`], or when the caller flushes.
//! - [`Engine::step`] advances the system by at most one sealed batch per
//!   lane (optimize → graft → execute to completion on the virtual clock);
//!   [`Engine::run_until_idle`] seals everything pending and drains it.
//! - [`QueryTicket::poll`] / [`QueryTicket::take_results`] observe and
//!   collect a query's ranked answers and its per-query [`UqReport`] as
//!   they materialize, without holding any borrow of the engine.
//!
//! ## Equivalence with the scripted driver
//!
//! [`run_workload`](crate::run_workload) is a thin compatibility driver
//! over this API: it admits a whole workload script and calls
//! [`Engine::run_until_idle`]. Admission is carefully arranged so that the
//! driver reproduces the historical run-to-completion semantics **bit for
//! bit** (same batches, same lane clocks, same optimizer decisions, same
//! tuples): batches are formed per lane in arrival order, sealed at
//! `batch_size`, and processed in order, with each lane's state evolving
//! exactly as the old sequential loop evolved it. The goldens in
//! `tests/parallel_identity.rs`, `tests/interner_invariants.rs`, and
//! `tests/session_api.rs` pin this equivalence.
//!
//! ATC-CL clustering needs a population of queries to cluster, so lanes for
//! that mode are created at the first flush from everything admitted so
//! far; queries admitted *after* the lanes exist are routed incrementally
//! to the lane whose cluster footprint they overlap most (a fresh lane when
//! they overlap none).

use crate::engine::{batch_share, graft_batch, EngineConfig, Lane, SharingMode};
use crate::report::{LaneSummary, OptEvent, QueryOutcome, RunReport, UqReport};
use qsys_catalog::{Catalog, KeywordIndex};
use qsys_opt::{estimate_uq_cost, normalize_weights, shard_cluster_affine, OptStats};
use qsys_query::{CandidateGenerator, CqIdx, CqSet, UserQuery};
use qsys_snapshot::{
    catalog_fingerprint, load_snapshot, write_snapshot, LaneImage, LoadedLane, SnapshotImage,
    SnapshotSummary,
};
use qsys_source::{SnapFaults, TableProvider};
use qsys_state::EvictionStats;
use qsys_types::{QsysResult, RelId, Score, Tuple, UqId, UserId};
use qsys_verify::VerifyReport;
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Factory handing each lane its own gateway to the (simulated) remote
/// tables. ATC-CL creates lanes on demand, so the engine owns the factory,
/// not a single provider.
pub type ProviderFactory = Box<dyn Fn() -> TableProvider + Send>;

/// Where a submitted query currently is in its lifecycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TicketStatus {
    /// Admitted; waiting in an admission window or a sealed batch.
    Queued,
    /// Its batch ran to completion: results and the [`UqReport`] are ready.
    Completed,
    /// Results were already collected with [`QueryTicket::take_results`]
    /// (or were never retained — the scripted driver discards payloads
    /// and reads only the aggregate report).
    Drained,
}

/// One admitted query's slot in the shared ledger.
#[derive(Debug, Default)]
struct TicketSlot {
    completed: bool,
    /// Caller asked for this query to be dropped before its batch runs.
    cancelled: bool,
    /// Virtual-time deadline: at batch start an expired member is skipped;
    /// a member finishing past it keeps its results but reports
    /// [`QueryOutcome::DeadlineExceeded`].
    deadline_us: Option<u64>,
    results: Option<Vec<(Score, Tuple)>>,
    report: Option<UqReport>,
    opt: Option<OptStats>,
}

/// The engine↔ticket mailbox: worker threads publish each query's results
/// here the moment its batch completes; tickets read without borrowing the
/// engine.
#[derive(Debug, Default)]
struct Ledger {
    slots: BTreeMap<UqId, TicketSlot>,
}

type SharedLedger = Arc<Mutex<Ledger>>;

fn ledger_lock(ledger: &Mutex<Ledger>) -> std::sync::MutexGuard<'_, Ledger> {
    ledger.lock().unwrap_or_else(|e| e.into_inner())
}

/// A handle to one submitted query: poll it, then take the ranked answers
/// and per-query report once its batch has executed. Tickets are detached
/// from the engine's borrow — hold as many as you like across
/// [`Engine::step`] calls.
#[derive(Clone)]
pub struct QueryTicket {
    uq: UqId,
    user: UserId,
    ledger: SharedLedger,
}

impl std::fmt::Debug for QueryTicket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryTicket")
            .field("uq", &self.uq)
            .field("user", &self.user)
            .field("status", &self.poll())
            .finish()
    }
}

impl QueryTicket {
    /// The user-query id this ticket tracks.
    pub fn id(&self) -> UqId {
        self.uq
    }

    /// The submitting user.
    pub fn user(&self) -> UserId {
        self.user
    }

    /// Where the query is right now.
    pub fn poll(&self) -> TicketStatus {
        let ledger = ledger_lock(&self.ledger);
        match ledger.slots.get(&self.uq) {
            Some(slot) if slot.completed => {
                if slot.results.is_some() {
                    TicketStatus::Completed
                } else {
                    TicketStatus::Drained
                }
            }
            _ => TicketStatus::Queued,
        }
    }

    /// Move the ranked answers out (best first). `None` until the query's
    /// batch completes, and again after they have been taken once.
    pub fn take_results(&self) -> Option<Vec<(Score, Tuple)>> {
        ledger_lock(&self.ledger)
            .slots
            .get_mut(&self.uq)
            .and_then(|slot| slot.results.take())
    }

    /// The per-query report line (response time, work, eviction/recovery
    /// status). Available once the query's batch completes; cloning, so it
    /// can be read any number of times.
    pub fn report(&self) -> Option<UqReport> {
        ledger_lock(&self.ledger)
            .slots
            .get(&self.uq)
            .and_then(|slot| slot.report.clone())
    }

    /// Optimizer statistics of the batch that planned this query.
    pub fn opt_stats(&self) -> Option<OptStats> {
        ledger_lock(&self.ledger)
            .slots
            .get(&self.uq)
            .and_then(|slot| slot.opt)
    }

    /// How execution ended — `None` until the query's batch has been
    /// dispatched. [`QueryOutcome::Complete`] on every clean run; the
    /// other states surface cancellation, deadlines, degraded top-ks
    /// (source faults), and lane panics.
    pub fn outcome(&self) -> Option<QueryOutcome> {
        ledger_lock(&self.ledger)
            .slots
            .get(&self.uq)
            .and_then(|slot| slot.report.as_ref().map(|r| r.outcome.clone()))
    }
}

/// A query admitted but not yet dispatched: the generated candidate
/// networks plus its virtual arrival time (drives window sealing).
struct Admitted {
    uq: UserQuery,
    arrival_us: u64,
}

/// One execution lane plus its admission state: the open (unsealed)
/// arrival window, the queue of sealed batches awaiting dispatch, and the
/// quantities the lane has produced so far.
struct LaneSlot {
    lane: Lane,
    /// The open admission window (seals into `ready`).
    open: Vec<Admitted>,
    /// Sealed batches, dispatched in order by [`Engine::step`].
    ready: VecDeque<Vec<Admitted>>,
    /// Optimizer invocations, in this lane's batch order.
    opt_events: Vec<OptEvent>,
    /// Host wall-clock µs spent executing on this lane.
    wall_us: u64,
    /// Relations referenced by queries routed here (ATC-CL's cluster
    /// footprint; drives incremental routing of late arrivals).
    footprint: BTreeSet<RelId>,
    /// The logical ATC-CL cluster this lane serves. Lanes born by
    /// sharding one oversized cluster share the id, which is what groups
    /// them for least-loaded routing of late arrivals.
    cluster: usize,
    /// Shard ancestry: `(shard index, shard count)` when this lane was
    /// born by splitting an oversized cluster; `None` for unsharded
    /// lanes.
    shard: Option<(usize, usize)>,
    /// Σ estimated work (raw per-UQ stream-leaf cost) routed here —
    /// the load metric shard-aware routing balances on. Tracked only
    /// when sharding is enabled.
    routed_cost: f64,
    /// Set when a batch panicked on this lane: its plan graph and clocks
    /// can no longer be trusted, so later batches routed here fail fast
    /// with [`QueryOutcome::Failed`] instead of executing on poisoned
    /// state. Other lanes — and the engine — keep serving.
    poisoned: Option<String>,
}

impl LaneSlot {
    fn new(lane: Lane) -> LaneSlot {
        LaneSlot {
            lane,
            open: Vec::new(),
            ready: VecDeque::new(),
            opt_events: Vec::new(),
            wall_us: 0,
            footprint: BTreeSet::new(),
            cluster: 0,
            shard: None,
            routed_cost: 0.0,
            poisoned: None,
        }
    }

    fn seal(&mut self) {
        if !self.open.is_empty() {
            self.ready.push_back(std::mem::take(&mut self.open));
        }
    }
}

/// The long-lived Q System service: admit keyword queries incrementally
/// through per-user [`Session`]s, advance execution with [`Engine::step`]
/// or [`Engine::run_until_idle`], and observe per-query progress through
/// [`QueryTicket`]s. See the [module docs](self) for the full lifecycle.
pub struct Engine {
    catalog: Catalog,
    index: KeywordIndex,
    config: EngineConfig,
    provider: ProviderFactory,
    lanes: Vec<LaneSlot>,
    /// ATC-CL queries admitted before the first flush (no lanes exist yet
    /// to route onto); clustered en masse when lanes are created.
    unrouted: Vec<Admitted>,
    /// Pin the engine to exactly one lane (the interactive [`QSystem`]
    /// facade, built from a single provider): clustering is skipped and
    /// every query routes to lane 0.
    single_lane: bool,
    next_uq: u32,
    next_cq: u32,
    ledger: SharedLedger,
    /// Keyword queries that matched no candidate network.
    skipped: Vec<String>,
    /// Whether batch execution clones each query's ranked tuples into the
    /// ledger for its ticket (the default). The scripted driver opts out:
    /// it reads only the aggregate report, and the pre-sessionized runner
    /// never materialized result payloads either.
    retain_results: bool,
    /// Lanes rehydrated from the warm-state snapshot at construction,
    /// waiting to be installed as lanes are created (index = lane index at
    /// recording time; ATC-CL may create lanes lazily, long after load).
    thawed: Vec<Option<LoadedLane>>,
    /// What snapshot recovery and publication have done so far (surfaced
    /// through [`Engine::report`]).
    snapshot: SnapshotSummary,
    /// Batches dispatched since the last auto-snapshot
    /// ([`EngineConfig::snapshot_every`] cadence).
    batches_since_snapshot: usize,
    /// Next logical ATC-CL cluster id (shards of one cluster share one).
    next_cluster: usize,
}

/// The snapshot-I/O fault schedule, when one is configured and non-empty.
fn snap_faults(config: &EngineConfig) -> Option<&SnapFaults> {
    config
        .faults
        .as_ref()
        .map(|f| &f.snap)
        .filter(|s| !s.is_clear())
}

/// Rehydrate warm state from `config.snapshot_dir`, when set. Every
/// failure mode degrades to cold lanes recorded in the summary; recovery
/// never panics and never blocks construction.
fn thaw(config: &EngineConfig, catalog: &Catalog) -> (Vec<Option<LoadedLane>>, SnapshotSummary) {
    match &config.snapshot_dir {
        Some(dir) => load_snapshot(
            dir,
            &config.warm_fingerprint(),
            catalog,
            snap_faults(config),
        ),
        None => (Vec::new(), SnapshotSummary::default()),
    }
}

/// Install rehydrated state into a freshly created lane. Must run before
/// the lane interns anything: the snapshot's `SigId`s are positional, so
/// the arena has to be rebuilt onto an empty interner for the ids to mean
/// what the warm store thinks they mean.
fn install(lane: &mut Lane, loaded: LoadedLane) {
    *lane.manager.shared_interner().borrow_mut() = loaded.interner;
    *lane.manager.warm_cell().borrow_mut() = loaded.warm;
    lane.adaptive.observed = loaded.observed;
}

impl Engine {
    /// Stand up an engine over a catalog, keyword index, and a provider
    /// factory (one provider per lane).
    pub fn new(
        catalog: Catalog,
        index: KeywordIndex,
        provider: ProviderFactory,
        config: EngineConfig,
    ) -> Engine {
        let (thawed, snapshot) = thaw(&config, &catalog);
        let mut engine = Engine {
            catalog,
            index,
            config,
            provider,
            lanes: Vec::new(),
            unrouted: Vec::new(),
            single_lane: false,
            next_uq: 0,
            next_cq: 0,
            ledger: Arc::default(),
            skipped: Vec::new(),
            retain_results: true,
            thawed,
            snapshot,
            batches_since_snapshot: 0,
            next_cluster: 0,
        };
        // Non-clustered modes always run one lane; create it eagerly so
        // admission can seal windows against it immediately. ATC-CL defers
        // lane creation to the first flush (clustering needs queries).
        if !matches!(engine.config.sharing, SharingMode::AtcCl(_)) {
            engine.add_lane();
        }
        engine
    }

    /// An engine over a generated [`Workload`](qsys_workload::Workload)'s
    /// catalog, index, and shared table store.
    pub fn for_workload(workload: &qsys_workload::Workload, config: EngineConfig) -> Engine {
        let tables = workload.tables.clone();
        Engine::new(
            workload.catalog.clone(),
            workload.index.clone(),
            Box::new(move || tables.provider()),
            config,
        )
    }

    /// An engine pinned to exactly one lane, built from a single table
    /// provider. This is the interactive [`QSystem`](crate::QSystem)
    /// substrate: clustering is disabled and every query is served by lane
    /// 0, whatever the sharing mode says.
    pub fn single_lane(
        catalog: Catalog,
        index: KeywordIndex,
        provider: TableProvider,
        config: EngineConfig,
    ) -> Engine {
        let (mut thawed, snapshot) = thaw(&config, &catalog);
        let mut lane = Lane::new(&config, provider, 0);
        if let Some(loaded) = thawed.get_mut(0).and_then(Option::take) {
            install(&mut lane, loaded);
        }
        Engine {
            catalog,
            index,
            config,
            provider: Box::new(|| unreachable!("single-lane engine never adds lanes")),
            lanes: vec![LaneSlot::new(lane)],
            unrouted: Vec::new(),
            single_lane: true,
            next_uq: 0,
            next_cq: 0,
            ledger: Arc::default(),
            skipped: Vec::new(),
            retain_results: true,
            thawed,
            snapshot,
            batches_since_snapshot: 0,
            next_cluster: 0,
        }
    }

    /// Create the next lane (index = current lane count), installing any
    /// rehydrated snapshot state for that index before the lane can intern
    /// its first signature. All lane creation funnels through here so a
    /// loaded snapshot warms every lane topology the engine can grow.
    fn add_lane(&mut self) -> usize {
        let idx = self.lanes.len();
        let mut lane = Lane::new(&self.config, (self.provider)(), idx as u64);
        if let Some(loaded) = self.thawed.get_mut(idx).and_then(Option::take) {
            install(&mut lane, loaded);
        }
        self.lanes.push(LaneSlot::new(lane));
        idx
    }

    /// Stop retaining per-ticket result payloads: tickets will report and
    /// poll as usual, but `take_results` has nothing to hand out. The
    /// scripted driver uses this — it only reads the aggregate report.
    pub(crate) fn discard_results(&mut self) {
        self.retain_results = false;
    }

    /// Open a session for one user. Sessions are lightweight handles;
    /// open and drop them freely — the [`QueryTicket`]s they hand out
    /// outlive them.
    pub fn session(&mut self, user: UserId) -> Session<'_> {
        Session {
            engine: self,
            user,
            edge_costs: None,
        }
    }

    /// The schema catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Number of execution lanes currently live (0 for ATC-CL before the
    /// first flush).
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Queries admitted but not yet executed (open windows + sealed
    /// batches + unrouted ATC-CL arrivals).
    pub fn pending(&self) -> usize {
        self.unrouted.len()
            + self
                .lanes
                .iter()
                .map(|slot| slot.open.len() + slot.ready.iter().map(Vec::len).sum::<usize>())
                .sum::<usize>()
    }

    /// Current virtual time, µs: the frontmost lane clock (lane 0), or 0
    /// before any lane exists. Lanes run independent clocks; per-lane time
    /// is what response times are measured on.
    pub fn now_us(&self) -> u64 {
        self.lanes
            .first()
            .map(|slot| slot.lane.sources.clock().now_us())
            .unwrap_or(0)
    }

    /// Lane 0's source gateway (work counters, clock) — the interactive
    /// single-lane facade reads its traffic accounting here.
    ///
    /// # Panics
    ///
    /// For an ATC-CL engine before its lanes exist (lanes are born at the
    /// first flush, once there are queries to cluster) — check
    /// [`Engine::lanes`] first, or use [`Engine::report`], which
    /// aggregates traffic across all lanes without panicking.
    pub fn sources(&self) -> &qsys_source::Sources {
        &self
            .lanes
            .first()
            // lint:allow(panic-path): documented panic (see `# Panics` above) — the fallible path is Engine::report
            .expect("no lanes yet: an ATC-CL engine creates them at the first flush")
            .lane
            .sources
    }

    /// Cumulative eviction statistics, summed over lanes.
    pub fn eviction_stats(&self) -> EvictionStats {
        let mut total = EvictionStats::default();
        for slot in &self.lanes {
            let s = slot.lane.manager.eviction_stats();
            total.evicted_nodes += s.evicted_nodes;
            total.reclaimed_bytes += s.reclaimed_bytes;
        }
        total
    }

    /// Record a keyword query that matched no candidate network (reported
    /// as skipped, like a real service reporting "no results").
    pub(crate) fn note_skipped(&mut self, keywords: &str) {
        self.skipped.push(keywords.to_string());
    }

    /// Admit an already-generated user query at a virtual arrival time,
    /// returning its ticket. [`Session::submit`] is the keyword-level
    /// entry; this one exists for drivers that generate candidate networks
    /// themselves (the workload runner, benches).
    ///
    /// The caller is responsible for id discipline: `uq.id` must be unique
    /// for the lifetime of the engine. The engine's own id allocator is
    /// bumped past `uq.id`, so interleaving `admit` with
    /// [`Session::submit`] on one engine can never collide.
    pub fn admit(&mut self, uq: UserQuery, arrival_us: u64) -> QueryTicket {
        self.next_uq = self.next_uq.max(uq.id.0.saturating_add(1));
        let ticket = QueryTicket {
            uq: uq.id,
            user: uq.user,
            ledger: Arc::clone(&self.ledger),
        };
        ledger_lock(&self.ledger).slots.entry(uq.id).or_default();
        let admitted = Admitted { uq, arrival_us };
        if self.lanes.is_empty() {
            // ATC-CL before the first flush: hold for clustering.
            self.unrouted.push(admitted);
        } else {
            let lane = self.route(&admitted);
            if self.shard_routing() {
                // Charge the arrival's estimated work to the lane so the
                // next arrival sees the updated shard loads.
                self.lanes[lane].routed_cost += self.live_estimate(lane, &admitted.uq);
            }
            self.enqueue(lane, admitted);
        }
        ticket
    }

    /// Whether shard-aware routing is active: ATC-CL with sharding
    /// enabled (the single-lane facade never shards).
    fn shard_routing(&self) -> bool {
        !self.single_lane
            && self.config.sharding.enabled()
            && matches!(self.config.sharing, SharingMode::AtcCl(_))
    }

    /// Estimate a query's stream-leaf work against one lane's live warm
    /// state (cost inputs recorded by that lane's optimizer runs).
    fn live_estimate(&self, lane: usize, uq: &UserQuery) -> f64 {
        let slot = &self.lanes[lane];
        let interner_cell = slot.lane.manager.shared_interner();
        let warm_cell = slot.lane.manager.warm_cell();
        let interner = interner_cell.borrow();
        let warm = warm_cell.borrow();
        estimate_uq_cost(
            uq,
            Some((&interner, &warm)),
            Some(&slot.lane.adaptive.observed),
        )
    }

    /// Pick the lane for a query once lanes exist: lane 0 unless ATC-CL,
    /// where late arrivals go to the lane whose cluster footprint they
    /// overlap most (ties to the lowest lane index; a fresh lane when no
    /// footprint overlaps).
    fn route(&mut self, admitted: &Admitted) -> usize {
        if self.single_lane || !matches!(self.config.sharing, SharingMode::AtcCl(_)) {
            return 0;
        }
        let refs: BTreeSet<RelId> = admitted
            .uq
            .cqs
            .iter()
            .flat_map(|(cq, _)| cq.rels())
            .collect();
        let (best, overlap) = self
            .lanes
            .iter()
            .enumerate()
            .map(|(idx, slot)| (idx, slot.footprint.intersection(&refs).count()))
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
            .unwrap_or((0, 0));
        if overlap == 0 {
            let idx = self.add_lane();
            self.lanes[idx].cluster = self.next_cluster;
            self.next_cluster += 1;
            return idx;
        }
        if !self.shard_routing() {
            return best;
        }
        // Shard-aware routing: the footprint match selects the logical
        // cluster; within it, land on the least-loaded live shard (ties
        // to the lowest lane index). Falls back to the footprint winner
        // when every shard of the cluster is poisoned.
        let cid = self.lanes[best].cluster;
        self.lanes
            .iter()
            .enumerate()
            .filter(|(_, slot)| slot.cluster == cid && slot.poisoned.is_none())
            .min_by(|a, b| {
                a.1.routed_cost
                    .partial_cmp(&b.1.routed_cost)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.0.cmp(&b.0))
            })
            .map(|(idx, _)| idx)
            .unwrap_or(best)
    }

    /// Append a query to a lane's open admission window, sealing by
    /// arrival window and by batch size.
    fn enqueue(&mut self, lane: usize, admitted: Admitted) {
        let window = self.config.arrival_window_us;
        let batch_size = self.config.batch_size.max(1);
        let grow_footprint = matches!(self.config.sharing, SharingMode::AtcCl(_));
        let slot = &mut self.lanes[lane];
        if let (Some(w), Some(first)) = (window, slot.open.first()) {
            if admitted.arrival_us.saturating_sub(first.arrival_us) > w {
                slot.seal();
            }
        }
        if grow_footprint {
            // Only ATC-CL routing reads the cluster footprint.
            slot.footprint
                .extend(admitted.uq.cqs.iter().flat_map(|(cq, _)| cq.rels()));
        }
        slot.open.push(admitted);
        if slot.open.len() >= batch_size {
            slot.seal();
        }
    }

    /// Seal every open admission window into a dispatchable batch. For
    /// ATC-CL's first flush this is also where lanes are born: everything
    /// admitted so far is clustered (Section 6.1) and routed en masse —
    /// exactly the shape the scripted driver has always produced.
    pub fn flush(&mut self) {
        self.route_unrouted();
        for slot in &mut self.lanes {
            slot.seal();
        }
    }

    /// ATC-CL lane birth: cluster everything still unrouted and route it
    /// (windows then seal lane by lane as usual). No-op once lanes exist —
    /// later arrivals route incrementally at admission.
    ///
    /// With sharding enabled, each cluster whose estimated work (per-UQ
    /// stream-leaf cost, falling back to UQ count) exceeds the threshold
    /// is split here by cost-balanced bin-packing, one lane per shard.
    fn route_unrouted(&mut self) {
        if !self.unrouted.is_empty() {
            let cluster_cfg = match &self.config.sharing {
                SharingMode::AtcCl(c) => *c,
                _ => unreachable!("only ATC-CL defers routing"),
            };
            let refs: BTreeMap<UqId, Vec<RelId>> = self
                .unrouted
                .iter()
                .map(|a| {
                    let rels = a.uq.cqs.iter().flat_map(|(cq, _)| cq.rels()).collect();
                    (a.uq.id, rels)
                })
                .collect();
            let clusters = qsys_opt::cluster_user_queries(&refs, cluster_cfg);
            let mut assignment: HashMap<UqId, usize> = HashMap::new();
            let mut routed_cost: HashMap<UqId, f64> = HashMap::new();
            if !self.shard_routing() {
                for cluster in clusters.iter() {
                    let idx = self.add_lane();
                    self.lanes[idx].cluster = self.next_cluster;
                    self.next_cluster += 1;
                    for uq in cluster {
                        assignment.insert(*uq, idx);
                    }
                }
            } else {
                // Shard plan first (immutable borrows only), lanes after.
                // Costs come from rehydrated snapshot state when present
                // (a restarted engine shards on real cardinalities); a
                // cold engine falls back to unit costs — cluster work
                // degrades to its UQ count, as configured thresholds
                // expect. Weights are normalized to mean 1.0 either way.
                let uq_ids: Vec<UqId> = refs.keys().copied().collect();
                let by_id: HashMap<UqId, &UserQuery> =
                    self.unrouted.iter().map(|a| (a.uq.id, &a.uq)).collect();
                let warm_state = self.thawed.iter().flatten().next();
                let raw: Vec<f64> = uq_ids
                    .iter()
                    .map(|id| {
                        estimate_uq_cost(
                            by_id[id],
                            warm_state.map(|l| (&l.interner, &l.warm)),
                            warm_state.map(|l| &l.observed),
                        )
                    })
                    .collect();
                let weights = normalize_weights(&raw);
                // lint:allow(panic-path): shard_routing() returned true, which requires a threshold
                let threshold = self.config.sharding.threshold.expect("sharding enabled");
                let max_shards = self.config.sharding.max_shards;
                // Interaction term for the packer: clustered UQs share
                // relations, and shared stream state makes a lane's work
                // superlinear in how much its members overlap — so
                // co-locating a near-duplicate pair costs their Jaccard
                // similarity times their combined weight again.
                let rel_sets: Vec<BTreeSet<RelId>> = uq_ids
                    .iter()
                    .map(|id| refs[id].iter().copied().collect())
                    .collect();
                let pairwise = |a: CqIdx, b: CqIdx| {
                    let (sa, sb) = (&rel_sets[a.index()], &rel_sets[b.index()]);
                    let inter = sa.intersection(sb).count() as f64;
                    let union = (sa.len() + sb.len()) as f64 - inter;
                    let jaccard = if union > 0.0 { inter / union } else { 0.0 };
                    jaccard * (weights[a.index()] + weights[b.index()])
                };
                let verify_on = self.config.verify_phases();
                let planned: Vec<Vec<Vec<(UqId, f64)>>> = clusters
                    .iter()
                    .enumerate()
                    .map(|(cluster_idx, cluster)| {
                        let members = CqSet::from_indices(cluster.iter().map(|uq| {
                            // lint:allow(panic-path): clusters partition exactly the ids in `refs`, whose keys built uq_ids
                            CqIdx(uq_ids.binary_search(uq).expect("clustered UQ") as u16)
                        }));
                        let shards = shard_cluster_affine(
                            &members,
                            &weights,
                            Some(&pairwise),
                            threshold,
                            max_shards,
                        );
                        if verify_on {
                            VerifyReport::from(qsys_verify::verify_shards(
                                &members,
                                &shards,
                                max_shards,
                                &format!("cluster[{cluster_idx}]/shards"),
                            ))
                            .assert_clean("post-cluster shard split");
                        }
                        shards
                            .iter()
                            .map(|shard| {
                                shard
                                    .iter()
                                    .map(|i| (uq_ids[i.index()], raw[i.index()]))
                                    .collect()
                            })
                            .collect()
                    })
                    .collect();
                let debug = self.config.shard_debug;
                for shards in planned {
                    let cid = self.next_cluster;
                    self.next_cluster += 1;
                    let count = shards.len();
                    for (shard_idx, members) in shards.into_iter().enumerate() {
                        if debug {
                            eprintln!(
                                "SHARD cluster {cid} shard {shard_idx}/{count}: {:?}",
                                members.iter().map(|(id, c)| (id.0, *c)).collect::<Vec<_>>()
                            );
                        }
                        let lane = self.add_lane();
                        self.lanes[lane].cluster = cid;
                        self.lanes[lane].shard = (count > 1).then_some((shard_idx, count));
                        for (id, cost) in members {
                            assignment.insert(id, lane);
                            routed_cost.insert(id, cost);
                        }
                    }
                }
            }
            for admitted in std::mem::take(&mut self.unrouted) {
                let lane = assignment[&admitted.uq.id];
                if let Some(cost) = routed_cost.get(&admitted.uq.id) {
                    self.lanes[lane].routed_cost += cost;
                }
                self.enqueue(lane, admitted);
            }
            if self.config.verify_phases() {
                for (idx, slot) in self.lanes.iter().enumerate() {
                    qsys_verify::verify_lane(&slot.lane.manager, &slot.lane.adaptive.observed)
                        .assert_clean(&format!("post-cluster (lane {idx})"));
                }
            }
        }
    }

    /// Advance the system: execute at most one sealed batch per lane, in
    /// parallel across lanes (capped by [`EngineConfig::lane_threads`]).
    /// Open admission windows are *not* sealed — partial batches keep
    /// waiting for more arrivals until [`Engine::flush`] or
    /// [`Engine::run_until_idle`]. Returns the number of batches executed
    /// (0 = idle).
    ///
    /// An ATC-CL engine defers lane creation until there are queries to
    /// cluster; so that the plain submit/step service loop never stalls,
    /// a step with at least one full window's worth of unclustered
    /// arrivals clusters and routes what has accumulated so far (fewer
    /// than that keeps waiting, exactly like a partial window).
    pub fn step(&mut self) -> usize {
        if self.lanes.is_empty() && self.unrouted.len() >= self.config.batch_size.max(1) {
            self.route_unrouted();
        }
        let ran = self.dispatch(false);
        self.auto_snapshot(ran);
        ran
    }

    /// Seal everything pending (including ATC-CL's initial clustering) and
    /// drain every lane to completion. Returns the number of batches
    /// executed.
    pub fn run_until_idle(&mut self) -> usize {
        self.flush();
        let ran = self.dispatch(true);
        self.auto_snapshot(ran);
        ran
    }

    /// Publish a warm-state snapshot after dispatch, on the configured
    /// cadence. Publication failures are recorded in the summary and never
    /// fail the step — persistence is best-effort, execution is not.
    fn auto_snapshot(&mut self, ran: usize) {
        if ran == 0 || self.config.snapshot_dir.is_none() {
            return;
        }
        self.batches_since_snapshot += ran;
        if self.batches_since_snapshot >= self.config.snapshot_every.max(1) {
            self.batches_since_snapshot = 0;
            let _ = self.snapshot(); // errors land in `snapshot.write_errors`
        }
    }

    /// Serialize every lane's warm state (interner arena + warm store)
    /// into an image ready for [`qsys_snapshot::write_snapshot`].
    fn snapshot_image(&self) -> SnapshotImage {
        SnapshotImage {
            engine_fingerprint: self.config.warm_fingerprint(),
            catalog_fingerprint: catalog_fingerprint(&self.catalog),
            lanes: self
                .lanes
                .iter()
                .map(|slot| {
                    let interner_cell = slot.lane.manager.shared_interner();
                    let warm_cell = slot.lane.manager.warm_cell();
                    let interner = interner_cell.borrow();
                    let warm = warm_cell.borrow();
                    LaneImage {
                        interner: interner.export_entries(),
                        warm: warm.export(),
                        observed: slot.lane.adaptive.observed.export(),
                    }
                })
                .collect(),
        }
    }

    /// Publish a crash-safe warm-state snapshot to
    /// [`EngineConfig::snapshot_dir`] right now (the engine also publishes
    /// automatically every [`EngineConfig::snapshot_every`] dispatched
    /// batches). Returns the published byte count.
    ///
    /// The write is atomic (tmp + fsync + rename): a crash mid-publish
    /// leaves the previous snapshot intact. Failures are also recorded in
    /// the report's [`SnapshotSummary::write_errors`].
    ///
    /// # Panics
    ///
    /// Only under an injected `snap:crash` fault (`QSYS_FAULTS`), which
    /// deliberately simulates the process dying between the tmp write and
    /// the rename — restart-chaos tests catch the unwind.
    pub fn snapshot(&mut self) -> Result<u64, String> {
        let Some(dir) = self.config.snapshot_dir.clone() else {
            return Err("engine has no snapshot_dir configured".into());
        };
        let image = self.snapshot_image();
        if self.config.verify_phases() {
            // Pre-publish boundary: never persist an image that could not
            // rehydrate — a corrupt snapshot outlives the process that
            // wrote it.
            qsys_verify::verify_snapshot(&image).assert_clean("pre-snapshot-publish");
        }
        match write_snapshot(&dir, &image, snap_faults(&self.config)) {
            Ok(bytes) => {
                self.snapshot.writes += 1;
                Ok(bytes)
            }
            Err(e) => {
                self.snapshot.write_errors.push(e.clone());
                Err(e)
            }
        }
    }

    /// What snapshot recovery and publication have done so far (also in
    /// [`Engine::report`]).
    pub fn snapshot_summary(&self) -> &SnapshotSummary {
        &self.snapshot
    }

    /// Reload this engine's own published snapshot from
    /// [`EngineConfig::snapshot_dir`] and run the verifier over every
    /// decoded lane — the on-disk half of the `reproduce verify` audit.
    /// The load path already drops sections that fail CRC or structural
    /// validation; this checks the *semantic* invariants of what survived
    /// (child closure, warm-plan containment, observed monotonicity).
    /// `Err` means nothing could be audited (no dir, or nothing loaded).
    pub fn audit_snapshot(&self) -> Result<VerifyReport, String> {
        let Some(dir) = &self.config.snapshot_dir else {
            return Err("engine has no snapshot_dir configured".into());
        };
        let (lanes, summary) = qsys_snapshot::load_snapshot(
            dir,
            &self.config.warm_fingerprint(),
            &self.catalog,
            snap_faults(&self.config),
        );
        if !summary.loaded {
            return Err(format!(
                "no snapshot loaded from {} ({})",
                dir.display(),
                summary
                    .reason
                    .as_deref()
                    .unwrap_or("no file or empty image")
            ));
        }
        let mut violations = Vec::new();
        for (idx, lane) in lanes.iter().enumerate() {
            let Some(lane) = lane else {
                // A lane the loader rejected wholesale is a recovery
                // event, not an invariant violation — `summary.reason`
                // carries it.
                continue;
            };
            let path = format!("disk[{idx}]");
            violations.extend(qsys_verify::verify_interner(
                &lane.interner,
                &format!("{path}/interner"),
            ));
            violations.extend(qsys_verify::verify_warm_export(
                &lane.warm.export(),
                &lane.interner,
                &format!("{path}/warm"),
            ));
            violations.extend(qsys_verify::verify_observed(
                &lane.observed.export(),
                lane.interner.len(),
                &format!("{path}/observed"),
            ));
        }
        Ok(VerifyReport::from(violations))
    }

    /// Run the full invariant verifier over every lane plus the snapshot
    /// image the engine would publish right now, regardless of
    /// [`EngineConfig::verify`]. This is the audit entry point used by
    /// `reproduce verify` and the mutation tests; the phase hooks use the
    /// same checks but panic via [`VerifyReport::assert_clean`] instead of
    /// returning.
    pub fn verify(&self) -> VerifyReport {
        let mut violations = Vec::new();
        for (idx, slot) in self.lanes.iter().enumerate() {
            let report = qsys_verify::verify_lane(&slot.lane.manager, &slot.lane.adaptive.observed);
            violations.extend(report.violations.into_iter().map(|mut v| {
                // verify_lane paths start "lane/…" — pin which lane.
                v.path = v.path.replacen("lane", &format!("lane[{idx}]"), 1);
                v
            }));
        }
        violations.extend(qsys_verify::verify_snapshot(&self.snapshot_image()).violations);
        VerifyReport::from(violations)
    }

    /// Run sealed batches: one per lane (`drain = false`) or every queued
    /// batch (`drain = true`). Lanes share no mutable state, so lanes with
    /// work run concurrently on scoped worker threads; all published
    /// quantities are per-lane or per-query, keeping results bit-identical
    /// to sequential execution.
    fn dispatch(&mut self, drain: bool) -> usize {
        let catalog = &self.catalog;
        let config = &self.config;
        let share = batch_share(&config.sharing);
        let retain_results = self.retain_results;
        let ledger = &self.ledger;
        let run_slot = |lane_idx: usize, slot: &mut LaneSlot| -> usize {
            let mut ran = 0;
            while let Some(batch) = slot.ready.pop_front() {
                match slot.poisoned.clone() {
                    // A lane that panicked once fails its later batches
                    // fast: its graph/clock state is unknown, and silently
                    // wrong answers would be worse than loud failures.
                    Some(earlier) => publish_failed(
                        lane_idx,
                        &batch,
                        &format!("lane poisoned by an earlier panic: {earlier}"),
                        ledger,
                    ),
                    None => {
                        let run = catch_unwind(AssertUnwindSafe(|| {
                            run_batch(
                                catalog,
                                config,
                                share,
                                retain_results,
                                lane_idx,
                                slot,
                                &batch,
                                ledger,
                            )
                        }));
                        if let Err(payload) = run {
                            let reason = panic_reason(payload);
                            publish_failed(lane_idx, &batch, &reason, ledger);
                            slot.poisoned = Some(reason);
                        }
                    }
                }
                ran += 1;
                if !drain {
                    break;
                }
            }
            ran
        };

        let mut jobs: Vec<(usize, &mut LaneSlot)> = self
            .lanes
            .iter_mut()
            .enumerate()
            .filter(|(_, slot)| !slot.ready.is_empty())
            .collect();
        let threads = self.config.lane_threads.max(1).min(jobs.len().max(1));
        if threads <= 1 || jobs.len() <= 1 {
            return jobs
                .iter_mut()
                .map(|(idx, slot)| run_slot(*idx, slot))
                .sum();
        }

        // Work queue: each entry hands exactly one worker exclusive
        // `&mut LaneSlot` access; no ordering is imposed on the workers and
        // none is needed — lanes are fully independent.
        let queue: Vec<Mutex<Option<(usize, &mut LaneSlot)>>> =
            jobs.into_iter().map(|job| Mutex::new(Some(job))).collect();
        let ran = AtomicUsize::new(0);
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= queue.len() {
                        break;
                    }
                    let (idx, slot) = queue[i]
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .take()
                        // lint:allow(panic-path): the atomic cursor hands each queue index to exactly one worker
                        .expect("each job is taken once");
                    ran.fetch_add(run_slot(idx, slot), Ordering::Relaxed);
                });
            }
        });
        ran.into_inner()
    }

    /// Whether any admitted query still awaits execution.
    pub fn is_idle(&self) -> bool {
        self.pending() == 0
    }

    /// Drop a completed query's ledger slot — results, report, optimizer
    /// stats. Slots are otherwise retained for the engine's lifetime so
    /// [`Engine::report`] can assemble the full run; a service consuming
    /// an unbounded query stream should forget each query once its
    /// ticket's payload has been collected and accounted for. Returns
    /// whether a slot was dropped. Outstanding tickets for a forgotten
    /// query read as [`TicketStatus::Queued`] again — forget only what
    /// you are done observing.
    pub fn forget(&mut self, uq: UqId) -> bool {
        ledger_lock(&self.ledger).slots.remove(&uq).is_some()
    }

    /// Cancel an admitted query that has not yet executed. Its batch skips
    /// it at dispatch (the ticket resolves to [`QueryOutcome::Cancelled`]
    /// with no results); the other members run normally. Returns `false`
    /// when the query is unknown, already executed, or already cancelled —
    /// cancellation is advisory, never an error.
    pub fn cancel(&mut self, uq: UqId) -> bool {
        let mut ledger = ledger_lock(&self.ledger);
        match ledger.slots.get_mut(&uq) {
            Some(slot) if !slot.completed && !slot.cancelled => {
                slot.cancelled = true;
                true
            }
            _ => false,
        }
    }

    /// Whether a lane was poisoned by a panicking batch (its queries fail
    /// fast; the rest of the engine keeps serving).
    pub fn poisoned_lanes(&self) -> usize {
        self.lanes
            .iter()
            .filter(|slot| slot.poisoned.is_some())
            .count()
    }

    /// Assemble the experiment report from everything executed so far:
    /// per-query lines in UQ order, lane wall times, the virtual-time
    /// breakdown, and total work, exactly as the scripted runner has
    /// always reported them.
    pub fn report(&self) -> RunReport {
        let mut report = RunReport {
            config: self.config.sharing.label().to_string(),
            lanes: self.lanes.len(),
            lane_threads: self.config.lane_threads.max(1),
            opt_events: self
                .lanes
                .iter()
                .flat_map(|slot| slot.opt_events.iter().copied())
                .collect(),
            lane_wall_us: self.lanes.iter().map(|slot| slot.wall_us).collect(),
            lane_summaries: self
                .lanes
                .iter()
                .enumerate()
                .map(|(idx, slot)| LaneSummary {
                    lane: idx,
                    cluster: slot.cluster,
                    shard_of: slot.shard,
                    wall_us: slot.wall_us,
                    tuples_consumed: slot.lane.sources.tuples_consumed(),
                    tuples_streamed: slot.lane.sources.tuples_streamed(),
                    uqs: 0,
                    poisoned: slot.poisoned.is_some(),
                    adaptive: slot.lane.adaptive.summary,
                })
                .collect(),
            skipped: self.skipped.clone(),
            snapshot: self.snapshot.clone(),
            config_errors: self
                .config
                .env_errors
                .iter()
                .map(ToString::to_string)
                .collect(),
            ..RunReport::default()
        };
        for slot in &self.lanes {
            let b = slot.lane.sources.clock().breakdown();
            report.breakdown.stream_read_us += b.stream_read_us;
            report.breakdown.random_access_us += b.random_access_us;
            report.breakdown.join_us += b.join_us;
            report.breakdown.optimize_us += b.optimize_us;
            report.tuples_consumed += slot.lane.sources.tuples_consumed();
            report.tuples_streamed += slot.lane.sources.tuples_streamed();
            report.stream_rounds += slot.lane.sources.stream_rounds();
            report.probes += slot.lane.sources.probes();
            report.faults.source.absorb(&slot.lane.governor.snapshot());
            report.adaptive.absorb(&slot.lane.adaptive.summary);
        }
        let ledger = ledger_lock(&self.ledger);
        report.per_uq = ledger
            .slots
            .values()
            .filter_map(|slot| slot.report.clone())
            .collect();
        drop(ledger);
        report.per_uq.sort_by_key(|u| u.uq);
        for u in &report.per_uq {
            if let Some(summary) = report.lane_summaries.get_mut(u.lane) {
                summary.uqs += 1;
            }
            match &u.outcome {
                QueryOutcome::Complete => {}
                QueryOutcome::Degraded { .. } => report.faults.degraded += 1,
                QueryOutcome::Failed { .. } => report.faults.failed += 1,
                QueryOutcome::Cancelled => report.faults.cancelled += 1,
                QueryOutcome::DeadlineExceeded => report.faults.deadline_exceeded += 1,
            }
        }
        report
    }

    /// Generate candidate networks for a keyword query, consuming the
    /// engine's UQ/CQ id sequences (shared by every admission path, so
    /// single-query and scripted execution can no longer drift).
    fn generate(
        &mut self,
        keywords: &str,
        user: UserId,
        edge_costs: Option<&HashMap<qsys_catalog::EdgeId, f64>>,
    ) -> QsysResult<UserQuery> {
        let generator =
            CandidateGenerator::new(&self.catalog, &self.index, self.config.candidate.clone());
        let uq = UqId::new(self.next_uq);
        self.next_uq += 1;
        generator.generate(keywords, uq, user, &mut self.next_cq, edge_costs)
    }
}

/// A per-user handle for submitting queries to an [`Engine`]. Obtained
/// from [`Engine::session`]; borrows the engine, so interleave submission
/// and stepping through the engine itself. A session may carry the user's
/// learned edge-cost model (Q System scoring, Section 2.1), applied to
/// every query it submits.
pub struct Session<'e> {
    engine: &'e mut Engine,
    user: UserId,
    edge_costs: Option<HashMap<qsys_catalog::EdgeId, f64>>,
}

impl Session<'_> {
    /// The session's user.
    pub fn user(&self) -> UserId {
        self.user
    }

    /// Attach the user's learned per-edge cost overrides: candidate
    /// networks submitted through this session are scored with them.
    pub fn with_edge_costs(mut self, costs: HashMap<qsys_catalog::EdgeId, f64>) -> Self {
        self.edge_costs = Some(costs);
        self
    }

    /// Submit a keyword query arriving at virtual time `arrival_us`:
    /// generate its candidate networks and admit it. Returns a
    /// [`QueryTicket`] immediately — execution happens on a later
    /// [`Engine::step`] / [`Engine::run_until_idle`], once the query's
    /// admission window seals.
    ///
    /// A query whose keywords match no candidate network is recorded as
    /// skipped and reported as an error (a real service answers "no
    /// results" without failing anyone else's batch).
    pub fn submit(&mut self, keywords: &str, arrival_us: u64) -> QsysResult<QueryTicket> {
        match self
            .engine
            .generate(keywords, self.user, self.edge_costs.as_ref())
        {
            Ok(uq) => Ok(self.engine.admit(uq, arrival_us)),
            Err(e) => {
                self.engine.note_skipped(keywords);
                Err(e)
            }
        }
    }

    /// Submit at the engine's current virtual time (interactive callers
    /// that don't simulate arrivals).
    pub fn submit_now(&mut self, keywords: &str) -> QsysResult<QueryTicket> {
        let now = self.engine.now_us();
        self.submit(keywords, now)
    }

    /// Submit with a virtual-time deadline. A query whose deadline has
    /// passed when its batch dispatches is skipped (no results, outcome
    /// [`QueryOutcome::DeadlineExceeded`]); one that merely *finishes*
    /// past it keeps its results but reports the same outcome — late, not
    /// wrong. Queries without deadlines in the same batch are unaffected.
    pub fn submit_with_deadline(
        &mut self,
        keywords: &str,
        arrival_us: u64,
        deadline_us: u64,
    ) -> QsysResult<QueryTicket> {
        let ticket = self.submit(keywords, arrival_us)?;
        if let Some(slot) = ledger_lock(&self.engine.ledger).slots.get_mut(&ticket.id()) {
            slot.deadline_us = Some(deadline_us);
        }
        Ok(ticket)
    }

    /// Cancel one of this user's tickets — sugar for
    /// [`Engine::cancel`]; same advisory semantics.
    pub fn cancel(&mut self, ticket: &QueryTicket) -> bool {
        self.engine.cancel(ticket.id())
    }
}

/// Render a panic payload for [`QueryOutcome::Failed`] reporting.
fn panic_reason(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "lane panicked".to_string()
    }
}

/// Ledger slot for a query its batch never executed (cancelled, expired,
/// or failed): completed with no results, carrying only its outcome.
fn unran_slot(admitted: &Admitted, lane_idx: usize, outcome: QueryOutcome) -> TicketSlot {
    TicketSlot {
        completed: true,
        cancelled: matches!(outcome, QueryOutcome::Cancelled),
        deadline_us: None,
        results: None,
        report: Some(UqReport {
            uq: admitted.uq.id,
            user: admitted.uq.user,
            keywords: admitted.uq.keywords.clone(),
            arrival_us: admitted.arrival_us,
            response_us: 0,
            results: 0,
            cqs_generated: admitted.uq.cqs.len(),
            cqs_executed: 0,
            lane: lane_idx,
            reused_nodes: 0,
            recovered_cqs: 0,
            outcome,
        }),
        opt: None,
    }
}

/// Resolve every member of a batch as [`QueryOutcome::Failed`] — the lane
/// panicked under it (or was already poisoned).
fn publish_failed(lane_idx: usize, batch: &[Admitted], reason: &str, ledger: &Mutex<Ledger>) {
    let mut guard = ledger_lock(ledger);
    for admitted in batch {
        guard.slots.insert(
            admitted.uq.id,
            unran_slot(
                admitted,
                lane_idx,
                QueryOutcome::Failed {
                    reason: reason.to_string(),
                },
            ),
        );
    }
}

/// Execute one sealed batch on a lane: optimize (per the sharing mode),
/// graft, run the ATC to completion, publish each member query's results
/// and report to the ledger, then release completed state and enforce the
/// memory budget. This is *the* execution path — the scripted driver, the
/// interactive facade, and incremental stepping all come through here.
#[allow(clippy::too_many_arguments)]
fn run_batch(
    catalog: &Catalog,
    config: &EngineConfig,
    share: bool,
    retain_results: bool,
    lane_idx: usize,
    slot: &mut LaneSlot,
    full_batch: &[Admitted],
    ledger: &Mutex<Ledger>,
) {
    let wall = std::time::Instant::now();
    let lane = &mut slot.lane;
    let submit = lane.sources.clock().now_us();

    // Members cancelled (or already past their deadline) before dispatch
    // drop out here: their slots resolve immediately and the survivors run
    // exactly as if the batch had been admitted without them.
    let mut deadlines: HashMap<UqId, u64> = HashMap::new();
    let mut batch: Vec<&Admitted> = Vec::with_capacity(full_batch.len());
    {
        let mut guard = ledger_lock(ledger);
        for admitted in full_batch {
            let id = admitted.uq.id;
            let (cancelled, deadline) = guard
                .slots
                .get(&id)
                .map(|s| (s.cancelled, s.deadline_us))
                .unwrap_or((false, None));
            let verdict = if cancelled {
                Some(QueryOutcome::Cancelled)
            } else if deadline.is_some_and(|d| submit >= d) {
                Some(QueryOutcome::DeadlineExceeded)
            } else {
                if let Some(d) = deadline {
                    deadlines.insert(id, d);
                }
                batch.push(admitted);
                None
            };
            if let Some(outcome) = verdict {
                guard
                    .slots
                    .insert(id, unran_slot(admitted, lane_idx, outcome));
            }
        }
    }
    if batch.is_empty() {
        slot.wall_us += wall.elapsed().as_micros() as u64;
        return;
    }

    for admitted in &batch {
        lane.stats.submit(admitted.uq.id, submit);
    }

    // Optimize + graft, remembering which queries each graft covered so
    // reuse/recovery status can be attributed per ticket.
    let mut grafts: Vec<(qsys_state::GraftOutcome, OptStats, Vec<UqId>)> = Vec::new();
    match config.sharing {
        // ATC-CQ / ATC-UQ: optimize each user query separately.
        SharingMode::AtcCq | SharingMode::AtcUq => {
            for admitted in &batch {
                let uq = &admitted.uq;
                let (outcome, opt) = graft_batch(catalog, lane, &[uq], config, share, false);
                slot.opt_events.push(OptEvent {
                    batch_cqs: uq.cqs.len(),
                    candidates: opt.candidates,
                    explored: opt.explored,
                    opt_us: opt.explored as u64 * 15,
                    warm_hits: opt.warm_hits,
                });
                grafts.push((outcome, opt, vec![uq.id]));
                if matches!(config.sharing, SharingMode::AtcUq) {
                    // Sharing stays within the user query.
                    lane.manager.isolate();
                }
            }
        }
        // ATC-FULL / ATC-CL: one multi-query optimization per batch.
        _ => {
            let uqs: Vec<&UserQuery> = batch.iter().map(|a| &a.uq).collect();
            let n_cqs: usize = uqs.iter().map(|uq| uq.cqs.len()).sum();
            let (outcome, opt) = graft_batch(catalog, lane, &uqs, config, share, false);
            slot.opt_events.push(OptEvent {
                batch_cqs: n_cqs,
                candidates: opt.candidates,
                explored: opt.explored,
                opt_us: opt.explored as u64 * 15,
                warm_hits: opt.warm_hits,
            });
            let ids = uqs.iter().map(|uq| uq.id).collect();
            grafts.push((outcome, opt, ids));
        }
    }

    if config.verify_phases() {
        // Post-graft boundary: the freshly grafted plan graph must satisfy
        // every structural invariant, and — before execution starts — no
        // rank-merge may be bound into a quarantined subtree (execution
        // later drains *around* quarantined leaves, so this second check
        // is only valid here, not after replans).
        qsys_verify::verify_lane(&lane.manager, &lane.adaptive.observed).assert_clean("post-graft");
        VerifyReport::from(qsys_verify::verify_no_quarantined_grafts(
            &lane.manager,
            "lane/graph",
        ))
        .assert_clean("post-graft");
    }

    // The adaptive loop needs the warm store (corrections live there) and
    // cross-query sharing semantics (a re-graft must merge back onto the
    // live leaves); ATC-CQ shares nothing and ATC-UQ isolates its
    // signature index between queries, so both run the static path.
    let adaptive_on = config.adaptive.enabled()
        && config.warm_opt
        && share
        && !matches!(config.sharing, SharingMode::AtcCq | SharingMode::AtcUq);
    if adaptive_on {
        adaptive_drive(catalog, config, share, lane, &batch, &mut slot.opt_events);
    } else {
        lane.atc.run_governed(
            lane.manager.graph_mut(),
            &lane.sources,
            &lane.governor,
            &mut lane.stats,
        );
    }
    lane.manager.unpin_all();

    // Harvest results before completed rank-merges are unlinked. The
    // per-query slots are assembled outside the ledger lock — concurrent
    // lanes contend only on the final inserts, not on the O(k) clones.
    let published: Vec<(UqId, TicketSlot)> = batch
        .iter()
        .map(|admitted| {
            let id = admitted.uq.id;
            let (outcome, opt) = grafts
                .iter()
                .find(|(_, _, ids)| ids.contains(&id))
                .map(|(o, s, _)| (o, *s))
                // lint:allow(panic-path): the graft loop above pushes an entry covering every batch member
                .expect("every batch member was grafted");
            // Result payloads are cloned only when a ticket can read them
            // (the scripted driver opts out: it reports counts, and the
            // old runner never materialized tuples either).
            let results: Option<Vec<(Score, Tuple)>> = retain_results.then(|| {
                lane.manager
                    .rank_merge_of(id)
                    .map(|rm| {
                        lane.manager
                            .graph()
                            .rank_merge(rm)
                            .results()
                            .iter()
                            .map(|r| (r.score, r.tuple.clone()))
                            .collect()
                    })
                    .unwrap_or_default()
            });
            // lint:allow(panic-path): stats.submit ran for this id at the top of run_batch
            let stats = lane.stats.uq(id).expect("submitted above");
            // Outcome, worst first: finishing past a deadline trumps
            // degradation (the results are retained either way), and any
            // relation lost mid-batch marks the top-k degraded.
            let completed_us = stats.completed_us.unwrap_or(submit);
            let query_outcome = if deadlines.get(&id).is_some_and(|d| completed_us > *d) {
                QueryOutcome::DeadlineExceeded
            } else if !stats.missing_rels.is_empty() {
                QueryOutcome::Degraded {
                    missing_rels: stats.missing_rels.clone(),
                }
            } else {
                QueryOutcome::Complete
            };
            let report = UqReport {
                uq: id,
                user: admitted.uq.user,
                keywords: admitted.uq.keywords.clone(),
                arrival_us: admitted.arrival_us,
                response_us: stats.response_us().unwrap_or(0),
                results: stats.results,
                cqs_generated: admitted.uq.cqs.len(),
                cqs_executed: stats.cqs_executed.len(),
                lane: lane_idx,
                reused_nodes: outcome.reused_nodes,
                recovered_cqs: outcome.recovered_uqs.iter().filter(|u| **u == id).count(),
                outcome: query_outcome,
            };
            (
                id,
                TicketSlot {
                    completed: true,
                    cancelled: false,
                    deadline_us: None,
                    results,
                    report: Some(report),
                    opt: Some(opt),
                },
            )
        })
        .collect();
    let mut ledger = ledger_lock(ledger);
    for (id, slot_data) in published {
        ledger.slots.insert(id, slot_data);
    }
    drop(ledger);

    lane.manager.unlink_completed();
    lane.manager.evict_to_budget();
    slot.wall_us += wall.elapsed().as_micros() as u64;
}

/// Rounds between drift checks in the adaptive drive loop: frequent
/// enough to catch drift while most of a batch is still ahead, rare
/// enough that observation never dominates a round.
const DRIFT_CHECK_INTERVAL: u64 = 4;

/// Mid-batch replans one batch may perform. Corrections persist in the
/// warm store (and are re-applied wholesale at batch end), so one
/// surgery per batch captures nearly all of the correction's value;
/// every further replan re-pays the optimize charge for marginal
/// fact deltas — churn, not adaptation.
const MAX_REPLANS_PER_BATCH: u64 = 1;

/// Drive one batch's ATC with the adaptive feedback loop (see
/// [`EngineConfig::adaptive`](crate::EngineConfig)): run scheduling
/// rounds exactly like `Atc::run_governed`, but every
/// [`DRIFT_CHECK_INTERVAL`] rounds tap the live graph's observed
/// cardinalities and compare them against the frozen warm-store facts.
/// When drift exceeds the configured ratio and enough of the batch is
/// still re-plannable, fold the observations into the warm store,
/// detach every member that has emitted nothing, and re-graft those
/// members through the warm optimizer path — their fresh rank-merges
/// rebuild from the archived state via `RecoverState` (the same
/// machinery a late-arriving query uses), so no tuple is lost and, with
/// nothing yet emitted, none can be duplicated.
fn adaptive_drive(
    catalog: &Catalog,
    config: &EngineConfig,
    share: bool,
    lane: &mut Lane,
    batch: &[&Admitted],
    opt_events: &mut Vec<OptEvent>,
) {
    let drift = config
        .adaptive
        .drift
        // lint:allow(panic-path): the adaptive_on gate requires adaptive.enabled(), which needs a drift threshold
        .expect("adaptive drive requires a threshold");
    lane.governor.begin_batch();
    let mut rounds: u64 = 0;
    let mut replans: u64 = 0;
    loop {
        let progress = lane.atc.round(
            lane.manager.graph_mut(),
            &lane.sources,
            &lane.governor,
            &mut lane.stats,
        );
        if !progress {
            break;
        }
        rounds += 1;
        if !rounds.is_multiple_of(DRIFT_CHECK_INTERVAL) || replans >= MAX_REPLANS_PER_BATCH {
            continue;
        }
        lane.adaptive.summary.drift_checks += 1;
        lane.manager.observe_into(&mut lane.adaptive.observed);
        let drifted = {
            let warm_cell = lane.manager.warm_cell();
            let warm = warm_cell.borrow();
            qsys_opt::adaptive::detect_drift(&warm, &lane.adaptive.observed, drift).any()
        };
        if !drifted {
            continue;
        }
        // Only members that have emitted nothing are safely re-plannable;
        // a replan must also still be worth it (enough of the batch left).
        let remaining: Vec<&UserQuery> = batch
            .iter()
            .map(|a| &a.uq)
            .filter(|uq| lane.manager.replannable(uq.id))
            .collect();
        if remaining.is_empty()
            || (remaining.len() as f64) < config.adaptive.min_remaining * batch.len() as f64
        {
            continue;
        }
        // Correct the warm store from what was observed. If nothing
        // actually changed, the re-plan would re-derive the same plan —
        // skip the surgery.
        let corrected = {
            let interner_cell = lane.manager.shared_interner();
            let interner = interner_cell.borrow();
            let warm_cell = lane.manager.warm_cell();
            let mut warm = warm_cell.borrow_mut();
            qsys_opt::adaptive::apply_observed(&mut warm, &lane.adaptive.observed, &interner)
        };
        lane.adaptive.summary.cards_corrected += corrected;
        if corrected == 0 {
            continue;
        }
        let replanned: Vec<&UserQuery> = remaining
            .into_iter()
            .filter(|uq| lane.manager.detach_for_replan(uq.id))
            .collect();
        if replanned.is_empty() {
            continue;
        }
        let opt_before = lane.sources.clock().breakdown().optimize_us;
        let (_, opt) = graft_batch(catalog, lane, &replanned, config, share, true);
        if config.verify_phases() {
            // Post-replan boundary: structural invariants only. The
            // quarantine check is deliberately absent — mid-execution the
            // legal degradation path drains around quarantined leaves.
            qsys_verify::verify_lane(&lane.manager, &lane.adaptive.observed)
                .assert_clean("post-replan");
        }
        lane.adaptive.summary.replan_us += lane
            .sources
            .clock()
            .breakdown()
            .optimize_us
            .saturating_sub(opt_before);
        opt_events.push(OptEvent {
            batch_cqs: replanned.iter().map(|uq| uq.cqs.len()).sum(),
            candidates: opt.candidates,
            explored: opt.explored,
            opt_us: opt.explored as u64 * 15,
            warm_hits: opt.warm_hits,
        });
        lane.adaptive.summary.replans += 1;
        replans += 1;
    }
    lane.adaptive.observed.add_rounds(rounds);
    // Final tap: later batches' shard routing, live estimates, and
    // snapshots should see end-of-batch truth even if no check fired.
    lane.manager.observe_into(&mut lane.adaptive.observed);
    // Fold the batch's full observations into the warm store now that
    // every stream has settled — exhausted leaves are exact counts and
    // their relation-level factors re-cost the whole candidate space.
    // Unlike the mid-batch surgery this charges nothing: the next batch
    // was going to optimize anyway, and a dropped plan memo cannot hurt
    // a batch shape that has never been seen.
    let corrected = {
        let interner_cell = lane.manager.shared_interner();
        let interner = interner_cell.borrow();
        let warm_cell = lane.manager.warm_cell();
        let mut warm = warm_cell.borrow_mut();
        qsys_opt::adaptive::apply_observed(&mut warm, &lane.adaptive.observed, &interner)
    };
    lane.adaptive.summary.cards_corrected += corrected;
}

//! # qsys — Sharing Work in Keyword Search over Databases
//!
//! A from-scratch Rust reproduction of the Q System's shared top-k query
//! processing middleware (Jacob & Ives, SIGMOD 2011), grown into a
//! **multi-user search service**: keyword queries arrive continuously,
//! are converted into ranked sets of conjunctive queries (candidate
//! networks), admitted into arrival windows, multi-query-optimized with
//! cost-based subexpression push-down, and executed by a fully pipelined
//! plan graph of split / m-join / rank-merge operators under a novel
//! coordinator, the **ATC**. Plan state persists between queries: later
//! queries graft onto the running graph and recover already-read stream
//! prefixes from the hash-table state instead of re-reading the network.
//!
//! ## Serving queries: the `Engine` / `Session` API
//!
//! The primary interface is a long-lived [`Engine`] serving per-user
//! [`Session`]s. Submission is *admission*, not execution: each submitted
//! query gets a [`QueryTicket`] immediately, batches form as arrivals
//! accumulate, and the engine advances when you [`step`](Engine::step) it
//! (or drain it with [`run_until_idle`](Engine::run_until_idle)).
//!
//! ```
//! use qsys::prelude::*;
//! use qsys_workload::gus::{self, GusConfig};
//!
//! // A synthetic bioinformatics federation (358 relations).
//! let mut cfg = GusConfig::small(42);
//! cfg.min_rows = 200;
//! cfg.max_rows = 400;
//! let workload = gus::generate(&cfg);
//! let mut engine = Engine::for_workload(
//!     &workload,
//!     EngineConfig { k: 5, batch_size: 2, ..EngineConfig::default() },
//! );
//!
//! // Two biologists pose overlapping queries; admission batches them.
//! let t1 = engine.session(UserId::new(0)).submit("protein gene", 0).unwrap();
//! let t2 = engine.session(UserId::new(1)).submit("gene membrane", 1_000).unwrap();
//! assert_eq!(t1.poll(), TicketStatus::Queued);
//!
//! // The window sealed at batch_size = 2; one step executes the batch.
//! engine.step();
//! assert_eq!(t1.poll(), TicketStatus::Completed);
//! let answers = t1.take_results().unwrap();
//! assert!(answers.len() <= 5);
//! // Per-query accounting rides along on the ticket.
//! let report = t2.report().unwrap();
//! assert_eq!(report.user, UserId::new(1));
//! ```
//!
//! For one-shot interactive use there is still [`QSystem`], now a thin
//! wrapper that pushes each `search` through the same admission path; and
//! for scripted experiments there is [`run_workload`], the
//! reproduction/bench driver that admits a whole [`qsys_workload::Workload`]
//! and drains the engine — bit-identical to the historical run-to-completion
//! runner by construction.
//!
//! ## Crate map
//!
//! | layer | crate |
//! |-------|-------|
//! | values, tuples, virtual clock | `qsys-types` |
//! | schema graph, keyword index | `qsys-catalog` |
//! | simulated remote DBMSs | `qsys-source` |
//! | CQs, scoring, candidate networks, sharing vocabulary (`SigInterner` ids, `CqSet` batch bitmasks) | `qsys-query` |
//! | operators, plan graph, ATC | `qsys-exec` |
//! | multi-query optimizer (arena-indexed BestPlan, AND-OR memo, clustering) | `qsys-opt` |
//! | state manager (graft/recover/evict, policy via `EngineConfig::eviction`) | `qsys-state` |
//! | invariant verifier + repo lint (see [`Engine::verify`]) | `qsys-verify` |
//! | workload generators | `qsys-workload` |
//!
//! Two dense-index layers keep the optimizer's hot path allocation-free:
//! subexpression identity is a hash-consed [`query::SigId`] (one interner
//! per engine lane, stable across batches), and within a batch every
//! "which queries use this input?" set is a [`query::CqSet`] bitmask over
//! the batch's [`query::CqTable`]. The BestPlan search runs entirely on
//! those indices — candidates in an arena, the memo mapping state keys to
//! plan-arena indices — with sharing decisions pinned bit-for-bit by the
//! goldens in `tests/interner_invariants.rs`.
//!
//! Across batches the optimizer **warm-starts** from a lane-persistent
//! reuse memo over the interner's child DAG (`opt::warm`, owned by each
//! lane's QS manager): recurring query shapes skip candidate enumeration,
//! and a recurring batch whose residency snapshot still validates replays
//! its recorded winning assignment outright — bit-identically, as the same
//! goldens prove. `EngineConfig::warm_opt` / `QSYS_WARM_OPT=0` selects the
//! cold path.
//!
//! Execution is organized into `Send` **lanes** (plan graph + ATC + source
//! registry + clock), an implementation detail behind the engine's
//! admission boundary; ATC-CL runs one lane per query cluster on worker
//! threads capped by [`EngineConfig::lane_threads`], with results
//! bit-identical to a sequential run (`tests/parallel_identity.rs`,
//! `tests/session_api.rs`). See the `qsys-exec` crate docs for the
//! threading model.

pub mod engine;
pub mod report;
pub mod session;

pub use engine::{ConfigError, EngineConfig, QSystem, SearchResult, SharingMode};
pub use qsys_opt::shard::ShardConfig;
pub use report::{
    generate_user_queries, run_workload, FaultSummary, LaneSummary, OptEvent, QueryOutcome,
    RunReport, UqReport,
};
pub use session::{Engine, ProviderFactory, QueryTicket, Session, TicketStatus};

/// One-stop imports for serving queries: the engine facade, its
/// configuration vocabulary, the reporting types, and the id newtypes the
/// API speaks in.
pub mod prelude {
    pub use crate::engine::{ConfigError, EngineConfig, QSystem, SearchResult, SharingMode};
    pub use crate::report::{
        run_workload, FaultSummary, LaneSummary, OptEvent, QueryOutcome, RunReport, UqReport,
    };
    pub use crate::session::{Engine, ProviderFactory, QueryTicket, Session, TicketStatus};
    pub use qsys_opt::shard::ShardConfig;
    pub use qsys_snapshot::SnapshotSummary;
    pub use qsys_types::{Score, Tuple, UqId, UserId};
    pub use qsys_verify::{VerifyReport, Violation, ViolationClass};
}

// Re-export the subsystem crates under one roof.
pub use qsys_catalog as catalog;
pub use qsys_exec as exec;
pub use qsys_opt as opt;
pub use qsys_query as query;
pub use qsys_snapshot as snapshot;
pub use qsys_source as source;
pub use qsys_state as state;
pub use qsys_types as types;
pub use qsys_verify as verify;

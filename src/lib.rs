//! # qsys — Sharing Work in Keyword Search over Databases
//!
//! A from-scratch Rust reproduction of the Q System's shared top-k query
//! processing middleware (Jacob & Ives, SIGMOD 2011): keyword queries are
//! converted into ranked sets of conjunctive queries (candidate networks),
//! batched, multi-query-optimized with cost-based subexpression push-down,
//! and executed by a fully pipelined plan graph of split / m-join /
//! rank-merge operators under a novel coordinator, the **ATC**. Plan state
//! persists between queries: later queries graft onto the running graph and
//! recover already-read stream prefixes from the hash-table state instead
//! of re-reading the network.
//!
//! ## Quick start
//!
//! ```
//! use qsys::{EngineConfig, QSystem, SharingMode};
//! use qsys_workload::gus::{self, GusConfig};
//! use qsys_types::UserId;
//!
//! // A synthetic bioinformatics federation (358 relations).
//! let mut cfg = GusConfig::small(42);
//! cfg.min_rows = 200;
//! cfg.max_rows = 400;
//! let workload = gus::generate(&cfg);
//! let mut system = QSystem::new(
//!     workload.catalog,
//!     workload.index,
//!     workload.tables.provider(),
//!     EngineConfig { k: 5, sharing: SharingMode::AtcFull, ..EngineConfig::default() },
//! );
//! let answers = system.search("protein gene", UserId::new(0)).unwrap();
//! assert!(answers.results.len() <= 5);
//! // A refinement reuses the state the first search left behind.
//! let refined = system.search("gene membrane", UserId::new(0)).unwrap();
//! assert!(refined.reused_nodes > 0 || refined.results.is_empty());
//! ```
//!
//! ## Crate map
//!
//! | layer | crate |
//! |-------|-------|
//! | values, tuples, virtual clock | `qsys-types` |
//! | schema graph, keyword index | `qsys-catalog` |
//! | simulated remote DBMSs | `qsys-source` |
//! | CQs, scoring, candidate networks, sharing vocabulary (`SigInterner` ids, `CqSet` batch bitmasks) | `qsys-query` |
//! | operators, plan graph, ATC | `qsys-exec` |
//! | multi-query optimizer (arena-indexed BestPlan, AND-OR memo, clustering) | `qsys-opt` |
//! | state manager (graft/recover/evict, policy via `EngineConfig::eviction`) | `qsys-state` |
//! | workload generators | `qsys-workload` |
//!
//! Two dense-index layers keep the optimizer's hot path allocation-free:
//! subexpression identity is a hash-consed [`query::SigId`] (one interner
//! per engine lane, stable across batches), and within a batch every
//! "which queries use this input?" set is a [`query::CqSet`] bitmask over
//! the batch's [`query::CqTable`]. The BestPlan search runs entirely on
//! those indices — candidates in an arena, the memo mapping state keys to
//! plan-arena indices — with sharing decisions pinned bit-for-bit by the
//! goldens in `tests/interner_invariants.rs`.
//!
//! Across batches the optimizer **warm-starts** from a lane-persistent
//! reuse memo over the interner's child DAG (`opt::warm`, owned by each
//! lane's QS manager): recurring query shapes skip candidate enumeration,
//! and a recurring batch whose residency snapshot still validates replays
//! its recorded winning assignment outright — bit-identically, as the same
//! goldens prove. `EngineConfig::warm_opt` / `QSYS_WARM_OPT=0` selects the
//! cold path.
//!
//! Execution is organized into `Send` **lanes** (plan graph + ATC + source
//! registry + clock); ATC-CL runs one lane per query cluster on worker
//! threads capped by [`EngineConfig::lane_threads`], with results
//! bit-identical to a sequential run (`tests/parallel_identity.rs`). See
//! the `qsys-exec` crate docs for the threading model.

pub mod engine;
pub mod report;

pub use engine::{EngineConfig, QSystem, SearchResult, SharingMode};
pub use report::{generate_user_queries, run_workload, OptEvent, RunReport, UqReport};

// Re-export the subsystem crates under one roof.
pub use qsys_catalog as catalog;
pub use qsys_exec as exec;
pub use qsys_opt as opt;
pub use qsys_query as query;
pub use qsys_source as source;
pub use qsys_state as state;
pub use qsys_types as types;

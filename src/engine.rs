//! Engine configuration, execution lanes, and the interactive facade.
//!
//! The pipeline of Figure 3 — keyword query → candidate networks →
//! batcher → optimizer (consulting the QS manager's reuse oracle) →
//! graft → ATC execution → top-k answers — is served by the sessionized
//! [`Engine`] in [`crate::session`]; this module holds its configuration
//! vocabulary ([`EngineConfig`], [`SharingMode`] selecting Section 7.1's
//! experimental systems), the lane type the engine executes on, and
//! [`QSystem`], the one-query-at-a-time interactive facade.

use crate::session::Engine;
use qsys_catalog::{Catalog, KeywordIndex};
use qsys_exec::{Atc, ExecStats, RetryPolicy, SchedulingPolicy, SourceGovernor};
use qsys_opt::adaptive::{AdaptiveConfig, AdaptiveSummary, ObservedStats};
use qsys_opt::cluster::ClusterConfig;
use qsys_opt::shard::ShardConfig;
use qsys_opt::{HeuristicConfig, OptStats, Optimizer, OptimizerConfig};
use qsys_query::{CandidateConfig, ScoreFn, UserQuery};
use qsys_source::{FaultInjector, FaultSpec, Sources, TableProvider};
use qsys_state::{EvictionPolicy, QsManager};
use qsys_types::{CostProfile, QsysError, QsysResult, Score, SimClock, Tuple, UqId, UserId};

/// Which sharing configuration to run (Section 7.1's four systems).
#[derive(Clone, Debug, Default, PartialEq)]
pub enum SharingMode {
    /// Baseline: each user query optimized separately, no subexpression
    /// sharing at all.
    AtcCq,
    /// Sharing within a user query, none across user queries or time.
    AtcUq,
    /// One plan graph for everything: full sharing and reuse.
    #[default]
    AtcFull,
    /// Clustered plan graphs, one ATC each (Section 6.1).
    AtcCl(ClusterConfig),
}

impl SharingMode {
    /// Short label used in reports (matches the paper's legend).
    pub fn label(&self) -> &'static str {
        match self {
            SharingMode::AtcCq => "ATC-CQ",
            SharingMode::AtcUq => "ATC-UQ",
            SharingMode::AtcFull => "ATC-FULL",
            SharingMode::AtcCl(_) => "ATC-CL",
        }
    }
}

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Results per user query (paper: 50).
    pub k: usize,
    /// User queries per optimization batch (paper: 5). An admission
    /// window seals into a dispatchable batch once it holds this many
    /// queries.
    pub batch_size: usize,
    /// Maximum virtual-time width of an admission window, µs: a query
    /// arriving more than this long after the window's first query seals
    /// the window early (a partially filled batch dispatches rather than
    /// waiting forever). `None` (the default, and the paper's setup) seals
    /// by count only.
    pub arrival_window_us: Option<u64>,
    /// Sharing configuration.
    pub sharing: SharingMode,
    /// QS manager memory budget in bytes.
    pub memory_budget: usize,
    /// Cache replacement policy under that budget (Section 6.3; the paper
    /// found LRU with size tie-break best — the others exist for the
    /// eviction ablation, which needs policy selection per engine config).
    pub eviction: EvictionPolicy,
    /// Candidate-network generation knobs.
    pub candidate: CandidateConfig,
    /// Optimizer pruning heuristics.
    pub heuristics: HeuristicConfig,
    /// Simulation cost constants.
    pub cost_profile: CostProfile,
    /// ATC scheduling policy (paper: round-robin).
    pub scheduling: SchedulingPolicy,
    /// Share random-access probe caches across operators of a plan graph
    /// (§7.1's "we cache tuples from random probes"); `false` only for the
    /// ablation.
    pub share_probe_caches: bool,
    /// Base RNG seed for network delays.
    pub seed: u64,
    /// Maximum lanes executing concurrently on OS threads. Only ATC-CL
    /// produces multiple lanes (one per query cluster); they share no
    /// mutable state, so running them in parallel changes wall time but
    /// no result, statistic, or sharing decision. `1` preserves strictly
    /// sequential lane order. Defaults to the `QSYS_LANE_THREADS`
    /// environment variable if set, else the machine's available
    /// parallelism.
    pub lane_threads: usize,
    /// Warm-start the optimizer from the lane's cross-batch reuse memo
    /// (`qsys_opt::warm`). Decisions are bit-identical either way — the
    /// memo is a cache, never a policy change — so this knob only trades
    /// host time. Defaults to on; `QSYS_WARM_OPT=0` disables it (the CI
    /// leg keeping the cold path exercised).
    pub warm_opt: bool,
    /// Deterministic fault schedule for the source layer (chaos testing).
    /// `None` — the default when `QSYS_FAULTS` is unset — leaves every
    /// fetch infallible and execution byte-identical to a build without
    /// the fault machinery. See `qsys_source::fault::FaultSpec` for the
    /// schedule grammar.
    pub faults: Option<FaultSpec>,
    /// Retry / timeout / circuit-breaker policy applied when `faults` is
    /// active (inert otherwise).
    pub retry: RetryPolicy,
    /// Directory holding the lane warm-state snapshot (crash-safe
    /// persistence of the interner arena + warm store, `qsys_snapshot`).
    /// When set, the engine rehydrates from `<dir>/qsys.snapshot` at
    /// construction and re-publishes on batch boundaries (see
    /// [`EngineConfig::snapshot_every`]). `None` — the default when
    /// `QSYS_SNAPSHOT_DIR` is unset — disables persistence entirely.
    pub snapshot_dir: Option<std::path::PathBuf>,
    /// Oversized-cluster sharding (ATC-CL only): when a cluster's
    /// estimated work exceeds `sharding.threshold` UQ-equivalents at lane
    /// birth, its UQ bitset is split by cost-balanced bin-packing into up
    /// to `sharding.max_shards` sub-lanes, each re-planned through the
    /// warm optimizer path; late arrivals route to the least-loaded live
    /// shard of their cluster. Sharding trades intra-cluster *sharing*
    /// for lane-wall *balance* but never changes any query's result
    /// multiset. Off by default (`threshold: None`) — lane topology is
    /// then byte-identical to the pre-sharding engine. Environment knobs:
    /// `QSYS_SHARD_THRESHOLD` (a work estimate ≥ 1, or `off`/`0`) and
    /// `QSYS_SHARD_MAX` (shard cap, default 8).
    pub sharding: ShardConfig,
    /// Adaptive mid-flight re-optimization: when enabled
    /// (`adaptive.drift` set), each sharing lane periodically compares
    /// runtime observations (per-leaf delivered cardinality, m-join
    /// state growth) against the frozen warm-store cost inputs during
    /// batch execution; past the drift ratio it folds the observed
    /// cards back into the warm store and re-plans the *remaining*
    /// queries (those that have emitted nothing yet) through the warm
    /// path, re-grafting them onto the live state. The result multiset
    /// per query is identical to the static plan's
    /// (`tests/adaptive_identity.rs`). Off by default — no observation,
    /// no drift checks, goldens byte-identical. Environment knobs:
    /// `QSYS_ADAPT_DRIFT` (a ratio > 1, or `off`/`0`) and
    /// `QSYS_ADAPT_MIN_REMAINING` (fraction of the batch that must
    /// still be re-plannable, default 0.25). Requires `warm_opt` (the
    /// corrected facts live in the warm store) — inert without it.
    pub adaptive: AdaptiveConfig,
    /// Auto-snapshot cadence when [`EngineConfig::snapshot_dir`] is set:
    /// publish a fresh snapshot after every this-many dispatched batches
    /// (callers can force one any time with `Engine::snapshot()`).
    /// Defaults to 1 — every batch boundary — overridable via
    /// `QSYS_SNAPSHOT_EVERY`. Must be ≥ 1.
    pub snapshot_every: usize,
    /// Run the `qsys-verify` invariant verifier at every phase boundary
    /// (post-cluster, post-graft, post-replan, pre-snapshot-publish).
    /// Always on in debug builds (`debug_assertions`); this knob —
    /// `QSYS_VERIFY=1` — turns it on for release builds too. A violation
    /// panics the offending lane with the full structured report: a
    /// broken sharing invariant means later answers cannot be trusted,
    /// so the engine fails loudly at the boundary that broke it.
    pub verify: bool,
    /// Print the shard plan (`SHARD cluster … shard …` lines to stderr)
    /// whenever an oversized cluster splits. `QSYS_SHARD_DEBUG` (any
    /// value) enables it; purely diagnostic, never changes routing.
    pub shard_debug: bool,
    /// Environment parse failures captured by `Default` (a malformed
    /// `QSYS_FAULTS` or `QSYS_SNAPSHOT_EVERY`). `Default` must stay
    /// infallible, so instead of panicking mid-construction the errors are
    /// recorded here, [`EngineConfig::validate`] surfaces them as
    /// structured [`ConfigError`]s, and an engine built from an
    /// un-validated bad config runs with the offending knob disabled and
    /// reports the error in its `RunReport` rather than ignoring it.
    pub env_errors: Vec<ConfigError>,
}

/// A structured configuration error: which field is bad and why.
///
/// Produced by [`EngineConfig::validate`] — both for environment parse
/// failures captured at `Default` time (`QSYS_FAULTS`,
/// `QSYS_SNAPSHOT_EVERY`) and for invariant violations in
/// programmatically-built configs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConfigError {
    /// The `EngineConfig` field (or environment variable) at fault.
    pub field: &'static str,
    /// Human-readable reason.
    pub message: String,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid engine config ({}): {}",
            self.field, self.message
        )
    }
}

impl std::error::Error for ConfigError {}

/// Default lane-thread count: `QSYS_LANE_THREADS` override (the CI knob
/// exercising the threaded path) or the machine's parallelism.
fn default_lane_threads() -> usize {
    if let Some(n) = std::env::var("QSYS_LANE_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        return n.max(1);
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Default warm-start gate: on unless `QSYS_WARM_OPT=0` (the env knob CI
/// uses to keep the cold optimizer path exercised by the whole suite).
fn default_warm_opt() -> bool {
    std::env::var("QSYS_WARM_OPT").map_or(true, |v| v != "0")
}

/// Parse a `QSYS_SNAPSHOT_EVERY` value (unset = the default cadence of 1).
/// Split out from the environment read so malformed values are unit-testable
/// without mutating process state.
pub(crate) fn parse_snapshot_every(value: Option<String>) -> Result<usize, String> {
    match value {
        None => Ok(1),
        Some(v) if v.trim().is_empty() => Ok(1),
        Some(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => Ok(n),
            Ok(n) => Err(format!("QSYS_SNAPSHOT_EVERY: cadence {n} must be ≥ 1")),
            Err(_) => Err(format!("QSYS_SNAPSHOT_EVERY: `{v}` is not a batch count")),
        },
    }
}

/// Parse a `QSYS_SHARD_THRESHOLD` value: unset, empty, `off`, or `0`
/// disable sharding; anything else must be a finite work estimate ≥ 1
/// (in UQ-equivalents). Split out like [`parse_snapshot_every`] so
/// malformed values are unit-testable without mutating process state.
pub(crate) fn parse_shard_threshold(value: Option<String>) -> Result<Option<f64>, String> {
    let Some(v) = value else { return Ok(None) };
    let v = v.trim();
    if v.is_empty() || v == "off" || v == "0" {
        return Ok(None);
    }
    match v.parse::<f64>() {
        Ok(t) if t.is_finite() && t >= 1.0 => Ok(Some(t)),
        Ok(t) => Err(format!(
            "QSYS_SHARD_THRESHOLD: {t} must be a finite work estimate ≥ 1 (or `off`)"
        )),
        Err(_) => Err(format!(
            "QSYS_SHARD_THRESHOLD: `{v}` is not a work estimate"
        )),
    }
}

/// Parse a `QSYS_ADAPT_DRIFT` value: unset, empty, `off`, or `0`
/// disable adaptive re-optimization; anything else must be a finite
/// drift ratio > 1 (an observation/estimate divergence factor).
pub(crate) fn parse_adapt_drift(value: Option<String>) -> Result<Option<f64>, String> {
    let Some(v) = value else { return Ok(None) };
    let v = v.trim();
    if v.is_empty() || v == "off" || v == "0" {
        return Ok(None);
    }
    match v.parse::<f64>() {
        Ok(t) if t.is_finite() && t > 1.0 => Ok(Some(t)),
        Ok(t) => Err(format!(
            "QSYS_ADAPT_DRIFT: {t} must be a finite drift ratio > 1 (or `off`)"
        )),
        Err(_) => Err(format!("QSYS_ADAPT_DRIFT: `{v}` is not a drift ratio")),
    }
}

/// Parse a `QSYS_ADAPT_MIN_REMAINING` value (unset = the default
/// fraction): how much of a batch must still be re-plannable for a
/// mid-batch replan to pay, as a fraction in [0, 1].
pub(crate) fn parse_adapt_min_remaining(value: Option<String>) -> Result<f64, String> {
    match value {
        None => Ok(AdaptiveConfig::DEFAULT_MIN_REMAINING),
        Some(v) if v.trim().is_empty() => Ok(AdaptiveConfig::DEFAULT_MIN_REMAINING),
        Some(v) => match v.trim().parse::<f64>() {
            Ok(f) if f.is_finite() && (0.0..=1.0).contains(&f) => Ok(f),
            Ok(f) => Err(format!(
                "QSYS_ADAPT_MIN_REMAINING: {f} must be a fraction in [0, 1]"
            )),
            Err(_) => Err(format!("QSYS_ADAPT_MIN_REMAINING: `{v}` is not a fraction")),
        },
    }
}

/// Parse a `QSYS_SHARD_MAX` value (unset = the default cap).
pub(crate) fn parse_shard_max(value: Option<String>) -> Result<usize, String> {
    match value {
        None => Ok(ShardConfig::DEFAULT_MAX_SHARDS),
        Some(v) if v.trim().is_empty() => Ok(ShardConfig::DEFAULT_MAX_SHARDS),
        Some(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => Ok(n),
            Ok(n) => Err(format!("QSYS_SHARD_MAX: cap {n} must be ≥ 1 shard")),
            Err(_) => Err(format!("QSYS_SHARD_MAX: `{v}` is not a shard count")),
        },
    }
}

/// Parse a `QSYS_VERIFY` value: unset, empty, or `0` leave phase-boundary
/// verification to the `debug_assertions` default; anything else turns it
/// on. Never an error — there is no way to misspell "on" dangerously.
pub(crate) fn parse_verify(value: Option<String>) -> bool {
    value.is_some_and(|v| !v.trim().is_empty() && v.trim() != "0")
}

impl Default for EngineConfig {
    fn default() -> Self {
        let mut env_errors = Vec::new();
        // The environment reads for every engine knob live here, and only
        // here (enforced by `qsys-lint`'s `env-read` rule): `Default`
        // captures the raw values, the `parse_*` helpers keep the parsing
        // testable without process-global state, and `validate_all`
        // surfaces whatever was malformed.
        let faults =
            FaultSpec::from_env_value(std::env::var("QSYS_FAULTS").ok()).unwrap_or_else(|e| {
                env_errors.push(ConfigError {
                    field: "faults",
                    message: e,
                });
                None
            });
        let snapshot_every = parse_snapshot_every(std::env::var("QSYS_SNAPSHOT_EVERY").ok())
            .unwrap_or_else(|e| {
                env_errors.push(ConfigError {
                    field: "snapshot_every",
                    message: e,
                });
                1
            });
        // A malformed shard knob disables sharding (the conservative
        // topology) and reports, mirroring the other env knobs.
        let shard_threshold = parse_shard_threshold(std::env::var("QSYS_SHARD_THRESHOLD").ok())
            .unwrap_or_else(|e| {
                env_errors.push(ConfigError {
                    field: "sharding.threshold",
                    message: e,
                });
                None
            });
        let shard_max = parse_shard_max(std::env::var("QSYS_SHARD_MAX").ok()).unwrap_or_else(|e| {
            env_errors.push(ConfigError {
                field: "sharding.max_shards",
                message: e,
            });
            ShardConfig::DEFAULT_MAX_SHARDS
        });
        // A malformed adaptive knob disables re-planning (the
        // conservative, static behaviour) and reports.
        let adapt_drift =
            parse_adapt_drift(std::env::var("QSYS_ADAPT_DRIFT").ok()).unwrap_or_else(|e| {
                env_errors.push(ConfigError {
                    field: "adaptive.drift",
                    message: e,
                });
                None
            });
        let adapt_min_remaining =
            parse_adapt_min_remaining(std::env::var("QSYS_ADAPT_MIN_REMAINING").ok())
                .unwrap_or_else(|e| {
                    env_errors.push(ConfigError {
                        field: "adaptive.min_remaining",
                        message: e,
                    });
                    AdaptiveConfig::DEFAULT_MIN_REMAINING
                });
        EngineConfig {
            k: 50,
            batch_size: 5,
            arrival_window_us: None,
            sharing: SharingMode::AtcFull,
            memory_budget: usize::MAX,
            eviction: EvictionPolicy::default(),
            candidate: CandidateConfig::default(),
            heuristics: HeuristicConfig::default(),
            cost_profile: CostProfile::default(),
            scheduling: SchedulingPolicy::RoundRobin,
            share_probe_caches: true,
            seed: 0,
            lane_threads: default_lane_threads(),
            warm_opt: default_warm_opt(),
            faults,
            retry: RetryPolicy::default(),
            snapshot_dir: std::env::var("QSYS_SNAPSHOT_DIR")
                .ok()
                .filter(|d| !d.trim().is_empty())
                .map(std::path::PathBuf::from),
            sharding: ShardConfig {
                threshold: shard_threshold,
                max_shards: shard_max,
            },
            adaptive: AdaptiveConfig {
                drift: adapt_drift,
                min_remaining: adapt_min_remaining,
            },
            snapshot_every,
            verify: parse_verify(std::env::var("QSYS_VERIFY").ok()),
            shard_debug: std::env::var_os("QSYS_SHARD_DEBUG").is_some(),
            env_errors,
        }
    }
}

impl EngineConfig {
    /// Validate the configuration, surfacing the first problem as a
    /// structured [`ConfigError`]: environment parse failures captured at
    /// `Default` time (a malformed `QSYS_FAULTS` schedule no longer
    /// panics — it lands here) and basic invariants of the numeric knobs.
    /// The full aggregated list is [`EngineConfig::validate_all`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        match self.validate_all().into_iter().next() {
            Some(err) => Err(err),
            None => Ok(()),
        }
    }

    /// Every problem with this configuration, aggregated: environment
    /// parse failures first (in capture order), then field-invariant
    /// violations in declaration order. Empty means the config is sound.
    /// Unlike [`EngineConfig::validate`] this does not stop at the first
    /// error, so an operator fixing a broken deployment sees the whole
    /// list at once instead of one knob per restart.
    pub fn validate_all(&self) -> Vec<ConfigError> {
        let mut errors = self.env_errors.clone();
        let mut invariant = |ok: bool, field: &'static str, message: &str| {
            if !ok {
                errors.push(ConfigError {
                    field,
                    message: message.into(),
                });
            }
        };
        invariant(self.k >= 1, "k", "top-k must be ≥ 1");
        invariant(
            self.batch_size >= 1,
            "batch_size",
            "batches hold at least one query",
        );
        invariant(
            self.lane_threads >= 1,
            "lane_threads",
            "at least one lane thread",
        );
        invariant(
            self.snapshot_every >= 1,
            "snapshot_every",
            "snapshot cadence must be ≥ 1 batch",
        );
        if let Some(t) = self.sharding.threshold {
            invariant(
                t.is_finite() && t >= 1.0,
                "sharding.threshold",
                "shard threshold must be a finite work estimate ≥ 1 UQ-equivalent",
            );
        }
        invariant(
            self.sharding.max_shards >= 1,
            "sharding.max_shards",
            "a cluster splits into at least one shard",
        );
        if let Some(d) = self.adaptive.drift {
            invariant(
                d.is_finite() && d > 1.0,
                "adaptive.drift",
                "drift ratio must be finite and > 1",
            );
        }
        invariant(
            self.adaptive.min_remaining.is_finite()
                && (0.0..=1.0).contains(&self.adaptive.min_remaining),
            "adaptive.min_remaining",
            "remaining-work fraction must be in [0, 1]",
        );
        errors
    }

    /// Whether phase-boundary invariant verification is active: always in
    /// debug builds, or per the `verify` knob (`QSYS_VERIFY=1`).
    pub(crate) fn verify_phases(&self) -> bool {
        cfg!(debug_assertions) || self.verify
    }

    /// The optimizer-configuration fingerprint warm state computed under
    /// this engine config carries (stamped into snapshot headers; a
    /// mismatch at load time rejects the snapshot before any state is
    /// admitted).
    pub(crate) fn warm_fingerprint(&self) -> String {
        OptimizerConfig {
            k: self.k,
            heuristics: self.heuristics.clone(),
            cost_profile: self.cost_profile,
            share_subexpressions: batch_share(&self.sharing),
            ..OptimizerConfig::default()
        }
        .warm_fingerprint()
    }
}

/// One execution lane: a plan graph, its ATC, and its gateway to the
/// sources. ATC-CL runs several lanes; the other modes run one.
///
/// A lane is `Send` (checked below) and internally single-threaded: all
/// state sharing happens *within* a lane (the plan graph's module arena,
/// the shared interner), never across lanes — so the engine may move
/// lanes onto worker threads and run them concurrently with no locks on
/// the execution path.
///
/// Lanes are an implementation detail of the [`Engine`] facade
/// (`crate::Engine`), which is why neither the type nor its constructor
/// is public: queries reach a lane only through admission.
pub(crate) struct Lane {
    /// The QS manager owning this lane's plan graph.
    pub(crate) manager: QsManager,
    /// This lane's source gateway (own clock, own counters).
    pub(crate) sources: Sources,
    /// The coordinator.
    pub(crate) atc: Atc,
    /// Per-UQ statistics.
    pub(crate) stats: ExecStats,
    /// Retry/breaker state for this lane's fetches. A strict pass-through
    /// while the lane's sources carry no fault injector.
    pub(crate) governor: SourceGovernor,
    /// Adaptive-execution state: accumulated runtime observations plus
    /// the lane's drift/replan counters. Untouched (default-empty) when
    /// `EngineConfig::adaptive` is off.
    pub(crate) adaptive: AdaptiveState,
}

/// A lane's adaptive-execution state (see [`EngineConfig::adaptive`]).
#[derive(Debug, Default)]
pub(crate) struct AdaptiveState {
    /// Runtime observations, monotone across the lane's lifetime (and
    /// rehydrated from a snapshot's observed-stats section).
    pub(crate) observed: ObservedStats,
    /// Drift/replan counters, reported per lane and merged into the run.
    pub(crate) summary: AdaptiveSummary,
}

/// Compile-time guarantee that lanes can move onto worker threads; if a
/// thread-pinning type (`Rc`, bare `Cell` sharing, …) sneaks back into the
/// executor, this is the line that fails to compile.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<Lane>();
};

impl Lane {
    pub(crate) fn new(config: &EngineConfig, provider: TableProvider, lane_idx: u64) -> Lane {
        let mut manager = QsManager::new(config.memory_budget).with_policy(config.eviction);
        if !config.share_probe_caches {
            manager = manager.with_private_probe_caches();
        }
        let mut sources = Sources::with_provider(
            SimClock::new(),
            config.cost_profile,
            config.seed ^ (lane_idx.wrapping_mul(0x517c_c1b7_2722_0a95)),
            provider,
        );
        if let Some(spec) = &config.faults {
            sources.set_injector(FaultInjector::new(spec.clone(), lane_idx as usize));
            sources.set_fetch_timeout(config.retry.fetch_timeout_us);
        }
        Lane {
            manager,
            sources,
            atc: Atc::new(config.scheduling),
            stats: ExecStats::new(),
            governor: SourceGovernor::new(config.retry),
            adaptive: AdaptiveState::default(),
        }
    }
}

/// Result of one interactive search.
#[derive(Debug)]
pub struct SearchResult {
    /// The user query id assigned.
    pub uq: UqId,
    /// Top-k answers, best first: `(score, join result)`.
    pub results: Vec<(Score, Tuple)>,
    /// Conjunctive queries generated for the search.
    pub cqs_generated: usize,
    /// Conjunctive queries the ATC actually executed (Table 4's metric).
    pub cqs_executed: usize,
    /// Plan-graph nodes reused from previous searches.
    pub reused_nodes: usize,
    /// Virtual response time, µs.
    pub response_us: u64,
    /// Optimizer stats for this search.
    pub opt: OptStats,
}

/// The interactive Q System facade: a single-lane [`Engine`] driven one
/// keyword query at a time, with each search run to completion.
///
/// Since the sessionized redesign this is a thin wrapper over
/// [`Engine::single_lane`]: `search` admits the query through the *same*
/// admission code every batch run uses (submit → seal → optimize → graft
/// → execute → publish), so the one-off path can no longer drift from
/// workload execution. Service callers that want to interleave several
/// users or control stepping should use [`Engine`] directly.
pub struct QSystem {
    engine: Engine,
}

impl QSystem {
    /// Stand up a system over a catalog, keyword index, and table provider.
    pub fn new(
        catalog: Catalog,
        index: KeywordIndex,
        provider: TableProvider,
        config: EngineConfig,
    ) -> QSystem {
        QSystem {
            engine: Engine::single_lane(catalog, index, provider, config),
        }
    }

    /// The catalog.
    pub fn catalog(&self) -> &Catalog {
        self.engine.catalog()
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        self.engine.config()
    }

    /// The lane's source gateway (work counters, clock).
    pub fn sources(&self) -> &Sources {
        self.engine.sources()
    }

    /// The underlying sessionized engine, for callers that start
    /// interactive and then need incremental admission.
    pub fn engine_mut(&mut self) -> &mut Engine {
        &mut self.engine
    }

    /// Pose a keyword query and run it to completion, reusing whatever
    /// state previous searches left in the plan graph. Equivalent to
    /// submitting through a [`Session`](crate::Session) and draining the
    /// engine — that is literally what it does.
    pub fn search(&mut self, keywords: &str, user: UserId) -> QsysResult<SearchResult> {
        let ticket = self.engine.session(user).submit_now(keywords)?;
        self.engine.run_until_idle();
        let report = ticket.report().ok_or_else(|| {
            QsysError::Internal(
                "drained single-lane engine left an admitted query unexecuted".into(),
            )
        })?;
        let results = ticket.take_results().unwrap_or_default();
        Ok(SearchResult {
            uq: ticket.id(),
            results,
            cqs_generated: report.cqs_generated,
            cqs_executed: report.cqs_executed,
            reused_nodes: report.reused_nodes,
            response_us: report.response_us,
            opt: ticket.opt_stats().unwrap_or_default(),
        })
    }
}

/// Whether the optimizer shares subexpressions within a batch, per mode.
pub(crate) fn batch_share(mode: &SharingMode) -> bool {
    !matches!(mode, SharingMode::AtcCq)
}

/// Optimize and graft a set of user queries as one batch onto a lane.
/// Returns the combined graft outcome and optimizer stats. `replan`
/// marks an adaptive mid-batch re-graft: the manager then instantiates
/// CQ roots fresh instead of merging them back onto the abandoned
/// plan's roots (whose signatures they necessarily share).
pub(crate) fn graft_batch(
    catalog: &Catalog,
    lane: &mut Lane,
    uqs: &[&UserQuery],
    config: &EngineConfig,
    share: bool,
    replan: bool,
) -> (qsys_state::GraftOutcome, OptStats) {
    let batch: Vec<(&qsys_query::ConjunctiveQuery, &ScoreFn)> = uqs
        .iter()
        .flat_map(|uq| uq.cqs.iter().map(|(cq, f)| (cq, f)))
        .collect();
    let opt_config = OptimizerConfig {
        k: config.k,
        heuristics: config.heuristics.clone(),
        cost_profile: config.cost_profile,
        share_subexpressions: share,
        ..OptimizerConfig::default()
    };
    let optimizer = Optimizer::new(catalog, opt_config);
    let (spec, opt_stats) = {
        // The lane's shared interner: the spec's signature ids must be the
        // ones the manager's reuse index is keyed on. The warm store rides
        // along (same ids, invalidated by the manager on eviction) unless
        // the config runs the optimizer cold.
        let interner = lane.manager.shared_interner();
        let warm = config.warm_opt.then(|| lane.manager.warm_cell());
        let oracle = lane.manager.reuse_oracle();
        optimizer.optimize_warm(
            &batch,
            &oracle,
            Some(lane.sources.clock()),
            &interner,
            warm.as_deref(),
        )
    };
    let outcome = if replan {
        lane.manager.graft_replan(&spec, &lane.sources, config.k)
    } else {
        lane.manager.graft(&spec, &lane.sources, config.k)
    };
    (outcome, opt_stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharing_labels_match_paper() {
        assert_eq!(SharingMode::AtcCq.label(), "ATC-CQ");
        assert_eq!(SharingMode::AtcUq.label(), "ATC-UQ");
        assert_eq!(SharingMode::AtcFull.label(), "ATC-FULL");
        assert_eq!(
            SharingMode::AtcCl(ClusterConfig::default()).label(),
            "ATC-CL"
        );
    }

    #[test]
    fn batch_share_only_disabled_for_cq() {
        assert!(!batch_share(&SharingMode::AtcCq));
        assert!(batch_share(&SharingMode::AtcUq));
        assert!(batch_share(&SharingMode::AtcFull));
        assert!(batch_share(&SharingMode::AtcCl(ClusterConfig::default())));
    }

    #[test]
    fn default_config_matches_paper_setup() {
        let c = EngineConfig::default();
        assert_eq!(c.k, 50);
        assert_eq!(c.batch_size, 5);
        assert_eq!(c.arrival_window_us, None, "paper setup seals by count");
        assert_eq!(c.scheduling, SchedulingPolicy::RoundRobin);
        assert_eq!(c.eviction, EvictionPolicy::LruSizeTieBreak);
        assert!(c.lane_threads >= 1, "at least one lane thread");
    }

    #[test]
    fn snapshot_every_parses_or_explains() {
        assert_eq!(parse_snapshot_every(None), Ok(1));
        assert_eq!(parse_snapshot_every(Some("".into())), Ok(1));
        assert_eq!(parse_snapshot_every(Some(" 8 ".into())), Ok(8));
        for bad in ["0", "-1", "five", "1.5"] {
            let err = parse_snapshot_every(Some(bad.into())).expect_err(bad);
            assert!(
                err.contains("QSYS_SNAPSHOT_EVERY"),
                "error for '{bad}' must name the knob: {err}"
            );
        }
    }

    #[test]
    fn shard_knobs_parse_or_explain() {
        // Threshold: unset / empty / off / 0 disable; ≥ 1 enables.
        assert_eq!(parse_shard_threshold(None), Ok(None));
        assert_eq!(parse_shard_threshold(Some("".into())), Ok(None));
        assert_eq!(parse_shard_threshold(Some("off".into())), Ok(None));
        assert_eq!(parse_shard_threshold(Some("0".into())), Ok(None));
        assert_eq!(parse_shard_threshold(Some(" 4 ".into())), Ok(Some(4.0)));
        assert_eq!(parse_shard_threshold(Some("1.5".into())), Ok(Some(1.5)));
        for bad in ["0.5", "-3", "NaN", "inf", "many"] {
            let err = parse_shard_threshold(Some(bad.into())).expect_err(bad);
            assert!(
                err.contains("QSYS_SHARD_THRESHOLD"),
                "error for '{bad}' must name the knob: {err}"
            );
        }
        // Max shards: unset/empty default, ≥ 1 required.
        assert_eq!(parse_shard_max(None), Ok(ShardConfig::DEFAULT_MAX_SHARDS));
        assert_eq!(
            parse_shard_max(Some(" ".into())),
            Ok(ShardConfig::DEFAULT_MAX_SHARDS)
        );
        assert_eq!(parse_shard_max(Some("4".into())), Ok(4));
        for bad in ["0", "-2", "2.5", "lots"] {
            let err = parse_shard_max(Some(bad.into())).expect_err(bad);
            assert!(
                err.contains("QSYS_SHARD_MAX"),
                "error for '{bad}' must name the knob: {err}"
            );
        }
    }

    #[test]
    fn adaptive_knobs_parse_or_explain() {
        // Drift: unset / empty / off / 0 disable; > 1 enables.
        assert_eq!(parse_adapt_drift(None), Ok(None));
        assert_eq!(parse_adapt_drift(Some("".into())), Ok(None));
        assert_eq!(parse_adapt_drift(Some("off".into())), Ok(None));
        assert_eq!(parse_adapt_drift(Some("0".into())), Ok(None));
        assert_eq!(parse_adapt_drift(Some(" 2 ".into())), Ok(Some(2.0)));
        assert_eq!(parse_adapt_drift(Some("1.5".into())), Ok(Some(1.5)));
        for bad in ["1", "0.5", "-3", "NaN", "inf", "lots"] {
            let err = parse_adapt_drift(Some(bad.into())).expect_err(bad);
            assert!(
                err.contains("QSYS_ADAPT_DRIFT"),
                "error for '{bad}' must name the knob: {err}"
            );
        }
        // Min remaining: unset/empty default, fraction in [0, 1].
        assert_eq!(
            parse_adapt_min_remaining(None),
            Ok(AdaptiveConfig::DEFAULT_MIN_REMAINING)
        );
        assert_eq!(
            parse_adapt_min_remaining(Some(" ".into())),
            Ok(AdaptiveConfig::DEFAULT_MIN_REMAINING)
        );
        assert_eq!(parse_adapt_min_remaining(Some("0".into())), Ok(0.0));
        assert_eq!(parse_adapt_min_remaining(Some("0.5".into())), Ok(0.5));
        assert_eq!(parse_adapt_min_remaining(Some("1".into())), Ok(1.0));
        for bad in ["1.5", "-0.1", "NaN", "half"] {
            let err = parse_adapt_min_remaining(Some(bad.into())).expect_err(bad);
            assert!(
                err.contains("QSYS_ADAPT_MIN_REMAINING"),
                "error for '{bad}' must name the knob: {err}"
            );
        }
    }

    #[test]
    fn validate_checks_adaptive_invariants() {
        let mut config = EngineConfig {
            env_errors: Vec::new(),
            ..EngineConfig::default()
        };
        config.adaptive = AdaptiveConfig::at(1.0);
        let err = config.validate().expect_err("ratio 1 never drifts");
        assert_eq!(err.field, "adaptive.drift");
        config.adaptive = AdaptiveConfig {
            drift: Some(f64::INFINITY),
            ..AdaptiveConfig::off()
        };
        assert!(config.validate().is_err(), "infinite ratio invalid");
        config.adaptive = AdaptiveConfig {
            drift: Some(2.0),
            min_remaining: 1.5,
        };
        let err = config.validate().expect_err("fraction above 1 invalid");
        assert_eq!(err.field, "adaptive.min_remaining");
        config.adaptive = AdaptiveConfig::at(2.0);
        config.validate().expect("sane adaptive validates");
        config.adaptive = AdaptiveConfig::off();
        config.validate().expect("default-off adaptive validates");
    }

    #[test]
    fn validate_checks_shard_invariants() {
        let mut config = EngineConfig {
            env_errors: Vec::new(),
            ..EngineConfig::default()
        };
        config.sharding = ShardConfig::at(0.25);
        let err = config.validate().expect_err("sub-unit threshold invalid");
        assert_eq!(err.field, "sharding.threshold");
        config.sharding = ShardConfig {
            threshold: Some(f64::NAN),
            max_shards: 4,
        };
        assert!(config.validate().is_err(), "NaN threshold invalid");
        config.sharding = ShardConfig {
            threshold: Some(8.0),
            max_shards: 0,
        };
        let err = config.validate().expect_err("zero shard cap invalid");
        assert_eq!(err.field, "sharding.max_shards");
        config.sharding = ShardConfig::at(8.0);
        config.validate().expect("sane sharding validates");
        config.sharding = ShardConfig::off();
        config.validate().expect("default-off sharding validates");
    }

    #[test]
    fn validate_surfaces_env_errors_first() {
        let mut config = EngineConfig {
            env_errors: vec![ConfigError {
                field: "faults",
                message: "QSYS_FAULTS: bad clause".into(),
            }],
            ..EngineConfig::default()
        };
        // A captured environment error outranks field checks…
        config.snapshot_every = 0;
        let err = config.validate().expect_err("env error fails validation");
        assert_eq!(err.field, "faults");
        assert!(err.to_string().contains("bad clause"));
        // …and once it is cleared, the field invariant reports.
        config.env_errors.clear();
        let err = config.validate().expect_err("cadence 0 is invalid");
        assert_eq!(err.field, "snapshot_every");
        config.snapshot_every = 1;
        config.validate().expect("clean config validates");
    }

    #[test]
    fn validate_all_aggregates_every_failure() {
        let mut config = EngineConfig {
            env_errors: vec![ConfigError {
                field: "faults",
                message: "QSYS_FAULTS: bad clause".into(),
            }],
            ..EngineConfig::default()
        };
        config.k = 0;
        config.batch_size = 0;
        config.snapshot_every = 0;
        let errors = config.validate_all();
        let fields: Vec<&str> = errors.iter().map(|e| e.field).collect();
        // Every failure reported at once, env capture first, then the
        // invariants in declaration order — and validate() stays the
        // first-error view of the same list.
        assert_eq!(fields, ["faults", "k", "batch_size", "snapshot_every"]);
        assert_eq!(
            config.validate().expect_err("same first error").field,
            "faults"
        );
        config.env_errors.clear();
        config.k = 1;
        config.batch_size = 1;
        config.snapshot_every = 1;
        assert!(
            config.validate_all().is_empty(),
            "clean config aggregates to nothing"
        );
    }

    #[test]
    fn parse_verify_reads_like_a_feature_flag() {
        // Any non-empty value other than "0" opts in.
        assert!(parse_verify(Some("1".into())));
        assert!(parse_verify(Some("true".into())));
        assert!(parse_verify(Some(" 1 ".into())));
        // Unset, empty, and the explicit zero stay off.
        assert!(!parse_verify(None));
        assert!(!parse_verify(Some(String::new())));
        assert!(!parse_verify(Some("  ".into())));
        assert!(!parse_verify(Some("0".into())));
    }

    #[test]
    fn verify_phases_follows_build_and_flag() {
        let mut config = EngineConfig {
            env_errors: Vec::new(),
            ..EngineConfig::default()
        };
        config.verify = true;
        assert!(config.verify_phases(), "explicit opt-in always verifies");
        config.verify = false;
        // Without the flag, phase hooks track the build profile.
        assert_eq!(config.verify_phases(), cfg!(debug_assertions));
    }

    #[test]
    fn eviction_policy_reaches_the_lane_manager() {
        for policy in [
            EvictionPolicy::LruSizeTieBreak,
            EvictionPolicy::Lru,
            EvictionPolicy::SizeGreedy,
        ] {
            let config = EngineConfig {
                eviction: policy,
                ..EngineConfig::default()
            };
            let provider: TableProvider = Box::new(|_| unreachable!("no table access here"));
            let lane = Lane::new(&config, provider, 0);
            assert_eq!(lane.manager.policy(), policy);
        }
    }
}

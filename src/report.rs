//! Workload runner and reporting: the engine behind every experiment.
//!
//! [`run_workload`] executes a scripted workload under one [`EngineConfig`]
//! and returns the quantities the paper's evaluation section plots:
//! per-user-query response times (Figures 7, 9, 12), time breakdowns
//! (Figure 8), conjunctive queries executed (Table 4), total tuples
//! consumed (Figure 10), and optimizer statistics (Figure 11).

use crate::engine::{
    batch_share, batches, graft_batch, make_lanes, EngineConfig, Lane, SharingMode,
};
use qsys_catalog::Catalog;
use qsys_query::{CandidateGenerator, UserQuery};
use qsys_types::{QsysResult, TimeBreakdown, UqId};
use qsys_workload::Workload;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Per-user-query report line.
#[derive(Debug, Clone)]
pub struct UqReport {
    /// The user query.
    pub uq: UqId,
    /// The keyword text.
    pub keywords: String,
    /// Virtual response time in µs (graft → top-k complete).
    pub response_us: u64,
    /// Results returned.
    pub results: usize,
    /// Conjunctive queries generated.
    pub cqs_generated: usize,
    /// Conjunctive queries executed (Table 4).
    pub cqs_executed: usize,
    /// Which lane (plan graph) served it.
    pub lane: usize,
}

/// One optimizer invocation (Figure 11's data points).
#[derive(Debug, Clone, Copy)]
pub struct OptEvent {
    /// Conjunctive queries in the batch.
    pub batch_cqs: usize,
    /// Push-down candidates entering BestPlan.
    pub candidates: usize,
    /// Search states explored.
    pub explored: usize,
    /// Simulated optimization time, µs.
    pub opt_us: u64,
    /// Whether this batch replayed a recorded warm plan instead of
    /// searching (host-time only; `explored`/`opt_us` are the recorded
    /// cold values either way).
    pub warm_hits: usize,
}

/// The full outcome of one workload run.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// Configuration label ("ATC-CQ" …).
    pub config: String,
    /// Per-UQ lines, in UQ order.
    pub per_uq: Vec<UqReport>,
    /// Number of plan graphs (lanes) used.
    pub lanes: usize,
    /// Lane-thread cap the run executed under.
    pub lane_threads: usize,
    /// Host wall-clock µs each lane spent executing, by lane index.
    pub lane_wall_us: Vec<u64>,
    /// Summed simulated time across lanes.
    pub breakdown: TimeBreakdown,
    /// Total input tuples consumed (Figure 10).
    pub tuples_consumed: u64,
    /// Stream tuples read.
    pub tuples_streamed: u64,
    /// Simulated network rounds spent on stream reads, summed over lanes
    /// (equals `tuples_streamed` at `fetch_batch` 1; fetch-ahead divides
    /// it by roughly the batch size).
    pub stream_rounds: u64,
    /// Remote probes issued.
    pub probes: u64,
    /// Optimizer invocations.
    pub opt_events: Vec<OptEvent>,
    /// Keyword queries that matched no candidate network (skipped).
    pub skipped: Vec<String>,
}

impl RunReport {
    /// Mean response time across UQs, µs.
    pub fn mean_response_us(&self) -> f64 {
        if self.per_uq.is_empty() {
            return 0.0;
        }
        self.per_uq
            .iter()
            .map(|u| u.response_us as f64)
            .sum::<f64>()
            / self.per_uq.len() as f64
    }

    /// Total simulated optimization time, µs.
    pub fn opt_us(&self) -> u64 {
        self.opt_events.iter().map(|e| e.opt_us).sum()
    }

    /// Batches served by the optimizer's cross-batch warm memo.
    pub fn warm_hits(&self) -> usize {
        self.opt_events.iter().map(|e| e.warm_hits).sum()
    }
}

/// Generate the user queries of a workload (shared by the runner, the
/// benches, and the examples). Queries whose keywords cannot be connected
/// into any candidate network are skipped (returned second) — a real system
/// reports "no results" for them rather than failing the batch.
pub fn generate_user_queries(
    workload: &Workload,
    config: &EngineConfig,
) -> QsysResult<(Vec<UserQuery>, Vec<String>)> {
    let generator =
        CandidateGenerator::new(&workload.catalog, &workload.index, config.candidate.clone());
    let mut next_cq = 0u32;
    let mut uqs = Vec::new();
    let mut skipped = Vec::new();
    for (i, q) in workload.queries.iter().enumerate() {
        match generator.generate(
            &q.keywords,
            UqId::new(i as u32),
            q.user,
            &mut next_cq,
            q.edge_costs.as_ref(),
        ) {
            Ok(uq) => uqs.push(uq),
            Err(_) => skipped.push(q.keywords.clone()),
        }
    }
    Ok((uqs, skipped))
}

/// Run `workload` (optionally truncated to its first `limit` user queries)
/// under `config`, returning the experiment report.
pub fn run_workload(
    workload: &Workload,
    config: &EngineConfig,
    limit: Option<usize>,
) -> QsysResult<RunReport> {
    let (mut uqs, skipped) = generate_user_queries(workload, config)?;
    if let Some(n) = limit {
        uqs.truncate(n);
    }
    let provider = || workload.tables.provider();
    let (mut lanes, assignment) = make_lanes(config, provider, &uqs);
    let share = batch_share(&config.sharing);
    let per_uq_meta: HashMap<UqId, (String, usize)> = uqs
        .iter()
        .map(|uq| (uq.id, (uq.keywords.clone(), uq.cqs.len())))
        .collect();

    // Partition the arrival-ordered script per lane, then process each
    // lane's batches. Lanes share no mutable state (own manager, sources,
    // clock, stats), so with `lane_threads > 1` they run concurrently on
    // scoped worker threads; results are merged by lane index either way,
    // keeping every reported quantity bit-identical to a sequential run.
    let lane_outcomes = run_lanes(
        &mut lanes,
        &uqs,
        &assignment,
        &workload.catalog,
        config,
        share,
    );

    // Assemble the report. Optimizer events concatenate in lane order —
    // the same order the old sequential loop emitted them in.
    let mut report = RunReport {
        config: config.sharing.label().to_string(),
        lanes: lanes.len(),
        lane_threads: config.lane_threads.max(1),
        opt_events: lane_outcomes
            .iter()
            .flat_map(|o| o.opt_events.iter().copied())
            .collect(),
        lane_wall_us: lane_outcomes.iter().map(|o| o.wall_us).collect(),
        skipped,
        ..RunReport::default()
    };
    for (lane_idx, lane) in lanes.iter().enumerate() {
        let b = lane.sources.clock().breakdown();
        report.breakdown.stream_read_us += b.stream_read_us;
        report.breakdown.random_access_us += b.random_access_us;
        report.breakdown.join_us += b.join_us;
        report.breakdown.optimize_us += b.optimize_us;
        report.tuples_consumed += lane.sources.tuples_consumed();
        report.tuples_streamed += lane.sources.tuples_streamed();
        report.stream_rounds += lane.sources.stream_rounds();
        report.probes += lane.sources.probes();
        for s in lane.stats.all() {
            let (keywords, generated) = per_uq_meta.get(&s.uq).cloned().unwrap_or_default();
            report.per_uq.push(UqReport {
                uq: s.uq,
                keywords,
                response_us: s.response_us().unwrap_or(0),
                results: s.results,
                cqs_generated: generated,
                cqs_executed: s.cqs_executed.len(),
                lane: lane_idx,
            });
        }
    }
    report.per_uq.sort_by_key(|u| u.uq);
    Ok(report)
}

/// What one lane produced, besides the state left in the lane itself.
struct LaneOutcome {
    /// Optimizer invocations, in this lane's batch order.
    opt_events: Vec<OptEvent>,
    /// Host wall-clock µs the lane spent executing its script.
    wall_us: u64,
}

/// Drive every lane to completion — sequentially for `lane_threads <= 1`,
/// otherwise on up to `lane_threads` scoped worker threads pulling lanes
/// from a shared queue. Outcomes come back indexed by lane, so callers see
/// the same ordering regardless of how execution was scheduled.
fn run_lanes(
    lanes: &mut [Lane],
    uqs: &[UserQuery],
    assignment: &HashMap<UqId, usize>,
    catalog: &Catalog,
    config: &EngineConfig,
    share: bool,
) -> Vec<LaneOutcome> {
    let run_one = |lane_idx: usize, lane: &mut Lane| -> LaneOutcome {
        let wall = std::time::Instant::now();
        let lane_uqs: Vec<UserQuery> = uqs
            .iter()
            .filter(|uq| assignment.get(&uq.id) == Some(&lane_idx))
            .cloned()
            .collect();
        let mut opt_events = Vec::new();
        for batch in batches(&lane_uqs, config.batch_size) {
            let submit = lane.sources.clock().now_us();
            for uq in &batch {
                lane.stats.submit(uq.id, submit);
            }
            match config.sharing {
                // ATC-CQ / ATC-UQ: optimize each user query separately.
                SharingMode::AtcCq | SharingMode::AtcUq => {
                    for uq in &batch {
                        let (_, opt) = graft_batch(catalog, lane, &[uq], config, share);
                        opt_events.push(OptEvent {
                            batch_cqs: uq.cqs.len(),
                            candidates: opt.candidates,
                            explored: opt.explored,
                            opt_us: opt.explored as u64 * 15,
                            warm_hits: opt.warm_hits,
                        });
                        if matches!(config.sharing, SharingMode::AtcUq) {
                            // Sharing stays within the user query.
                            lane.manager.isolate();
                        }
                    }
                }
                // ATC-FULL / ATC-CL: one multi-query optimization per batch.
                _ => {
                    let n_cqs: usize = batch.iter().map(|uq| uq.cqs.len()).sum();
                    let (_, opt) = graft_batch(catalog, lane, &batch, config, share);
                    opt_events.push(OptEvent {
                        batch_cqs: n_cqs,
                        candidates: opt.candidates,
                        explored: opt.explored,
                        opt_us: opt.explored as u64 * 15,
                        warm_hits: opt.warm_hits,
                    });
                }
            }
            lane.atc
                .run(lane.manager.graph_mut(), &lane.sources, &mut lane.stats);
            lane.manager.unpin_all();
            lane.manager.unlink_completed();
            lane.manager.evict_to_budget();
        }
        LaneOutcome {
            opt_events,
            wall_us: wall.elapsed().as_micros() as u64,
        }
    };

    let threads = config.lane_threads.max(1).min(lanes.len().max(1));
    if threads <= 1 || lanes.len() <= 1 {
        return lanes
            .iter_mut()
            .enumerate()
            .map(|(idx, lane)| run_one(idx, lane))
            .collect();
    }

    // Work queue: each job hands exactly one worker exclusive `&mut Lane`
    // access; outcome slots are per-lane, so no ordering is imposed on the
    // workers and none is needed — lanes are fully independent.
    let jobs: Vec<Mutex<Option<(usize, &mut Lane)>>> = lanes
        .iter_mut()
        .enumerate()
        .map(|(idx, lane)| Mutex::new(Some((idx, lane))))
        .collect();
    let outcomes: Vec<Mutex<Option<LaneOutcome>>> = jobs.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                let (idx, lane) = jobs[i]
                    .lock()
                    .expect("job slot")
                    .take()
                    .expect("each job is taken once");
                let outcome = run_one(idx, lane);
                *outcomes[i].lock().expect("outcome slot") = Some(outcome);
            });
        }
    });
    outcomes
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("outcome slot")
                .expect("every lane ran")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_response_handles_empty() {
        let r = RunReport::default();
        assert_eq!(r.mean_response_us(), 0.0);
        assert_eq!(r.opt_us(), 0);
    }

    #[test]
    fn mean_response_averages() {
        let mut r = RunReport::default();
        for (i, us) in [100u64, 300].iter().enumerate() {
            r.per_uq.push(UqReport {
                uq: UqId::new(i as u32),
                keywords: String::new(),
                response_us: *us,
                results: 1,
                cqs_generated: 1,
                cqs_executed: 1,
                lane: 0,
            });
        }
        assert_eq!(r.mean_response_us(), 200.0);
    }

    #[test]
    fn opt_events_sum() {
        let mut r = RunReport::default();
        r.opt_events.push(OptEvent {
            batch_cqs: 3,
            candidates: 1,
            explored: 10,
            opt_us: 150,
            warm_hits: 0,
        });
        r.opt_events.push(OptEvent {
            batch_cqs: 2,
            candidates: 0,
            explored: 1,
            opt_us: 15,
            warm_hits: 1,
        });
        assert_eq!(r.opt_us(), 165);
        assert_eq!(r.warm_hits(), 1);
    }
}

//! Experiment reporting, and the scripted workload driver.
//!
//! [`RunReport`] carries the quantities the paper's evaluation section
//! plots: per-user-query response times (Figures 7, 9, 12), time
//! breakdowns (Figure 8), conjunctive queries executed (Table 4), total
//! tuples consumed (Figure 10), and optimizer statistics (Figure 11).
//!
//! [`run_workload`] is the reproduction/bench driver: a thin compatibility
//! shim that admits a whole scripted [`Workload`] into a sessionized
//! [`Engine`] and drains it. Interactive service callers
//! should use the [`Engine`]/[`Session`](crate::Session)
//! API directly; this driver exists so that every experiment, bench, and
//! golden keeps one canonical run-to-completion entry point — and it is
//! bit-identical to the historical scripted runner by construction, since
//! admission forms exactly the batches the old per-lane loop formed.

use crate::engine::EngineConfig;
use crate::session::{Engine, QueryTicket};
use qsys_exec::FaultStats;
use qsys_opt::AdaptiveSummary;
use qsys_query::{CandidateGenerator, UserQuery};
use qsys_types::{QsysError, QsysResult, RelId, TimeBreakdown, UqId, UserId};
use qsys_workload::Workload;

/// How one user query's execution ended. Every outcome other than
/// [`QueryOutcome::Complete`] exists only when the caller used the
/// cancel/deadline API or a fault schedule was active — a clean run is
/// all-`Complete` by construction.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum QueryOutcome {
    /// Full-fidelity top-k.
    #[default]
    Complete,
    /// The top-k is correct over what the surviving sources delivered, but
    /// the listed relations failed mid-batch, so answers needing them may
    /// be missing.
    Degraded {
        /// Relations this query reads that were lost to faults.
        missing_rels: Vec<RelId>,
    },
    /// The query produced nothing — its lane panicked (or was already
    /// poisoned by an earlier panic) before results could be published.
    Failed {
        /// Human-readable cause (the panic payload, or "lane poisoned").
        reason: String,
    },
    /// Cancelled by the caller before its batch ran.
    Cancelled,
    /// Its deadline passed: either before its batch started (no results)
    /// or during execution (results are retained — late, not wrong).
    DeadlineExceeded,
}

impl QueryOutcome {
    /// Whether the query delivered its full-fidelity top-k on time.
    pub fn is_complete(&self) -> bool {
        *self == QueryOutcome::Complete
    }
}

/// Per-user-query report line.
#[derive(Debug, Clone)]
pub struct UqReport {
    /// The user query.
    pub uq: UqId,
    /// The submitting user.
    pub user: UserId,
    /// The keyword text.
    pub keywords: String,
    /// Virtual arrival time the query was admitted with, µs.
    pub arrival_us: u64,
    /// Virtual response time in µs (graft → top-k complete).
    pub response_us: u64,
    /// Results returned.
    pub results: usize,
    /// Conjunctive queries generated.
    pub cqs_generated: usize,
    /// Conjunctive queries executed (Table 4).
    pub cqs_executed: usize,
    /// Which lane (plan graph) served it.
    pub lane: usize,
    /// Plan-graph nodes its batch reused from earlier state (batch-level:
    /// every member of a multi-query batch reports the batch's total).
    pub reused_nodes: usize,
    /// How many of this query's CQs ran a `RecoverState` recovery query
    /// over pre-existing stream state (Section 6.2).
    pub recovered_cqs: usize,
    /// How execution ended (`Complete` on every clean run).
    pub outcome: QueryOutcome,
}

/// Per-lane execution summary: how work actually spread across plan
/// graphs, including shard ancestry when lane sharding split an
/// oversized ATC-CL cluster. This is how lane imbalance is observed in
/// production runs, not just in the bench harness's `lane_wall_us`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LaneSummary {
    /// Lane index (matches `UqReport::lane`).
    pub lane: usize,
    /// The logical ATC-CL cluster this lane serves; shards of one split
    /// cluster share the id. Always 0 for single-graph modes.
    pub cluster: usize,
    /// `(shard index, shard count)` when this lane was born by splitting
    /// an oversized cluster; `None` for unsharded lanes.
    pub shard_of: Option<(usize, usize)>,
    /// Host wall-clock µs spent executing on this lane.
    pub wall_us: u64,
    /// Input tuples this lane's sources consumed.
    pub tuples_consumed: u64,
    /// Stream tuples this lane read.
    pub tuples_streamed: u64,
    /// User queries served by this lane.
    pub uqs: usize,
    /// Whether a panicking batch poisoned the lane.
    pub poisoned: bool,
    /// This lane's adaptive-execution counters (all zero with the
    /// adaptive path disabled).
    pub adaptive: AdaptiveSummary,
}

/// One optimizer invocation (Figure 11's data points).
#[derive(Debug, Clone, Copy)]
pub struct OptEvent {
    /// Conjunctive queries in the batch.
    pub batch_cqs: usize,
    /// Push-down candidates entering BestPlan.
    pub candidates: usize,
    /// Search states explored.
    pub explored: usize,
    /// Simulated optimization time, µs.
    pub opt_us: u64,
    /// Whether this batch replayed a recorded warm plan instead of
    /// searching (host-time only; `explored`/`opt_us` are the recorded
    /// cold values either way).
    pub warm_hits: usize,
}

/// The full outcome of one workload run (or of everything an
/// [`Engine`] has executed so far — see
/// [`Engine::report`](crate::Engine::report)).
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// Configuration label ("ATC-CQ" …).
    pub config: String,
    /// Per-UQ lines, in UQ order.
    pub per_uq: Vec<UqReport>,
    /// Number of plan graphs (lanes) used.
    pub lanes: usize,
    /// Lane-thread cap the run executed under.
    pub lane_threads: usize,
    /// Host wall-clock µs each lane spent executing, by lane index.
    pub lane_wall_us: Vec<u64>,
    /// Per-lane wall/tuple/shard-ancestry summaries, by lane index.
    pub lane_summaries: Vec<LaneSummary>,
    /// Summed simulated time across lanes.
    pub breakdown: TimeBreakdown,
    /// Total input tuples consumed (Figure 10).
    pub tuples_consumed: u64,
    /// Stream tuples read.
    pub tuples_streamed: u64,
    /// Simulated network rounds spent on stream reads, summed over lanes
    /// (equals `tuples_streamed` at `fetch_batch` 1; fetch-ahead divides
    /// it by roughly the batch size).
    pub stream_rounds: u64,
    /// Remote probes issued.
    pub probes: u64,
    /// Optimizer invocations.
    pub opt_events: Vec<OptEvent>,
    /// Keyword queries that matched no candidate network (skipped).
    pub skipped: Vec<String>,
    /// Fault/resilience accounting (all zero on a clean run).
    pub faults: FaultSummary,
    /// Adaptive-execution accounting summed across lanes (all zero with
    /// `EngineConfig::adaptive` off — the default).
    pub adaptive: AdaptiveSummary,
    /// Warm-state snapshot recovery/publication accounting (default when
    /// `EngineConfig::snapshot_dir` is unset).
    pub snapshot: qsys_snapshot::SnapshotSummary,
    /// Environment/config errors the engine ran with — a malformed
    /// `QSYS_FAULTS` or `QSYS_SNAPSHOT_EVERY` disables that knob and is
    /// reported here instead of panicking (see `EngineConfig::validate`).
    pub config_errors: Vec<String>,
}

/// Run-level fault accounting: the source governors' counters summed over
/// lanes, plus how many queries ended in each non-`Complete` outcome.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultSummary {
    /// Retry/timeout/breaker counters summed across lane governors.
    pub source: FaultStats,
    /// Queries that completed with a degraded (partial) top-k.
    pub degraded: usize,
    /// Queries that failed outright (lane panic).
    pub failed: usize,
    /// Queries cancelled before execution.
    pub cancelled: usize,
    /// Queries whose deadline passed.
    pub deadline_exceeded: usize,
}

impl FaultSummary {
    /// Whether anything at all deviated from a clean run.
    pub fn any(&self) -> bool {
        *self != FaultSummary::default()
    }
}

impl RunReport {
    /// Mean response time across UQs, µs.
    pub fn mean_response_us(&self) -> f64 {
        if self.per_uq.is_empty() {
            return 0.0;
        }
        self.per_uq
            .iter()
            .map(|u| u.response_us as f64)
            .sum::<f64>()
            / self.per_uq.len() as f64
    }

    /// Response-time percentile across UQs in µs, nearest-rank: `p` in
    /// (0, 100]; `response_percentile_us(50.0)` is the median,
    /// `response_percentile_us(99.0)` the tail the degradation curves
    /// plot. 0 when no query has run.
    pub fn response_percentile_us(&self, p: f64) -> u64 {
        if self.per_uq.is_empty() {
            return 0;
        }
        let mut times: Vec<u64> = self.per_uq.iter().map(|u| u.response_us).collect();
        times.sort_unstable();
        let rank = ((p / 100.0) * times.len() as f64).ceil() as usize;
        times[rank.clamp(1, times.len()) - 1]
    }

    /// Total simulated optimization time, µs.
    pub fn opt_us(&self) -> u64 {
        self.opt_events.iter().map(|e| e.opt_us).sum()
    }

    /// Batches served by the optimizer's cross-batch warm memo.
    pub fn warm_hits(&self) -> usize {
        self.opt_events.iter().map(|e| e.warm_hits).sum()
    }

    /// This user's report lines, in UQ order — the per-session view a
    /// service caller would otherwise re-aggregate by hand.
    pub fn per_user(&self, user: UserId) -> Vec<&UqReport> {
        self.per_uq.iter().filter(|u| u.user == user).collect()
    }

    /// The report line behind one [`QueryTicket`].
    pub fn per_ticket(&self, ticket: &QueryTicket) -> Option<&UqReport> {
        self.per_uq_id(ticket.id())
    }

    /// The report line for one user-query id.
    pub fn per_uq_id(&self, uq: UqId) -> Option<&UqReport> {
        self.per_uq.iter().find(|u| u.uq == uq)
    }

    /// Σ/max lane-wall balance: 1.0 when one lane does all the work,
    /// approaching the lane count as walls even out — the quantity that
    /// bounds parallel lane speedup (and the lane-sharding target
    /// metric). 1.0 when nothing has executed.
    pub fn lane_balance(&self) -> f64 {
        let max = self.lane_wall_us.iter().copied().max().unwrap_or(0);
        if max == 0 {
            return 1.0;
        }
        self.lane_wall_us.iter().sum::<u64>() as f64 / max as f64
    }
}

/// Generate the user queries of a workload (shared by the runner, the
/// benches, and the examples). Queries whose keywords cannot be connected
/// into any candidate network are skipped (returned second) — a real system
/// reports "no results" for them rather than failing the batch.
pub fn generate_user_queries(
    workload: &Workload,
    config: &EngineConfig,
) -> QsysResult<(Vec<UserQuery>, Vec<String>)> {
    let generator =
        CandidateGenerator::new(&workload.catalog, &workload.index, config.candidate.clone());
    let mut next_cq = 0u32;
    let mut uqs = Vec::new();
    let mut skipped = Vec::new();
    for (i, q) in workload.queries.iter().enumerate() {
        match generator.generate(
            &q.keywords,
            UqId::new(i as u32),
            q.user,
            &mut next_cq,
            q.edge_costs.as_ref(),
        ) {
            Ok(uq) => uqs.push(uq),
            Err(_) => skipped.push(q.keywords.clone()),
        }
    }
    Ok((uqs, skipped))
}

/// Run `workload` (optionally truncated to its first `limit` user queries)
/// under `config`, returning the experiment report.
///
/// This is the scripted compatibility driver over the sessionized
/// [`Engine`]: pre-generate the script's candidate networks
/// (preserving the historical UQ/CQ id assignment, including ids consumed
/// by skipped queries), admit everything, drain the engine, and read its
/// report. Admission seals batches exactly where the old per-lane loop
/// chunked them, so every reported quantity is bit-identical to the
/// pre-sessionized runner.
pub fn run_workload(
    workload: &Workload,
    config: &EngineConfig,
    limit: Option<usize>,
) -> QsysResult<RunReport> {
    let (mut uqs, skipped) = generate_user_queries(workload, config)?;
    if let Some(n) = limit {
        uqs.truncate(n);
    }
    let mut engine = Engine::for_workload(workload, config.clone());
    // The report reads counts, not payloads — skip the per-ticket clones.
    engine.discard_results();
    for kw in &skipped {
        engine.note_skipped(kw);
    }
    for uq in uqs {
        // generate_user_queries assigns UqId = script index (skipped
        // queries consume ids too); resolve the arrival through that
        // invariant and fail loudly if it ever drifts — a silent arrival
        // of 0 would re-shape batches under a configured arrival window.
        let script = workload.queries.get(uq.id.index()).ok_or_else(|| {
            QsysError::Internal(format!(
                "UqId {} does not index the workload script ({} entries)",
                uq.id.index(),
                workload.queries.len()
            ))
        })?;
        if script.keywords != uq.keywords {
            return Err(QsysError::Internal(format!(
                "UqId/script alignment drifted in generate_user_queries: \
                 script '{}' vs generated '{}' at id {}",
                script.keywords,
                uq.keywords,
                uq.id.index()
            )));
        }
        engine.admit(uq, script.arrival_us);
    }
    engine.run_until_idle();
    Ok(engine.report())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(uq: u32, user: u32, us: u64) -> UqReport {
        UqReport {
            uq: UqId::new(uq),
            user: UserId::new(user),
            keywords: String::new(),
            arrival_us: 0,
            response_us: us,
            results: 1,
            cqs_generated: 1,
            cqs_executed: 1,
            lane: 0,
            reused_nodes: 0,
            recovered_cqs: 0,
            outcome: QueryOutcome::Complete,
        }
    }

    #[test]
    fn mean_response_handles_empty() {
        let r = RunReport::default();
        assert_eq!(r.mean_response_us(), 0.0);
        assert_eq!(r.opt_us(), 0);
    }

    #[test]
    fn mean_response_averages() {
        let mut r = RunReport::default();
        r.per_uq.push(line(0, 0, 100));
        r.per_uq.push(line(1, 0, 300));
        assert_eq!(r.mean_response_us(), 200.0);
    }

    #[test]
    fn per_user_filters_and_per_uq_id_finds() {
        let mut r = RunReport::default();
        r.per_uq.push(line(0, 7, 100));
        r.per_uq.push(line(1, 3, 200));
        r.per_uq.push(line(2, 7, 300));
        let u7 = r.per_user(UserId::new(7));
        assert_eq!(u7.len(), 2);
        assert!(u7.iter().all(|l| l.user == UserId::new(7)));
        assert_eq!(r.per_user(UserId::new(9)).len(), 0);
        assert_eq!(r.per_uq_id(UqId::new(1)).unwrap().response_us, 200);
        assert!(r.per_uq_id(UqId::new(42)).is_none());
    }

    #[test]
    fn percentiles_nearest_rank() {
        let mut r = RunReport::default();
        assert_eq!(r.response_percentile_us(50.0), 0);
        for (i, us) in [100u64, 200, 300, 400].iter().enumerate() {
            r.per_uq.push(line(i as u32, 0, *us));
        }
        assert_eq!(r.response_percentile_us(50.0), 200);
        assert_eq!(r.response_percentile_us(99.0), 400);
        assert_eq!(r.response_percentile_us(25.0), 100);
        assert!(!r.faults.any());
    }

    #[test]
    fn opt_events_sum() {
        let mut r = RunReport::default();
        r.opt_events.push(OptEvent {
            batch_cqs: 3,
            candidates: 1,
            explored: 10,
            opt_us: 150,
            warm_hits: 0,
        });
        r.opt_events.push(OptEvent {
            batch_cqs: 2,
            candidates: 0,
            explored: 1,
            opt_us: 15,
            warm_hits: 1,
        });
        assert_eq!(r.opt_us(), 165);
        assert_eq!(r.warm_hits(), 1);
    }
}
